//! Socket-level keep-alive load generator: N persistent connections
//! streaming interleaved `POST /rate` and `GET /group/{u}` (plus paged
//! reads, `POST /v1/feedback` and `/v1/stats` reads) against a real
//! [`Server`] — the accept loop, thread-per-connection handlers and
//! background refresh worker the `gf-serve` binary runs — while
//! refreshes swap snapshots underneath.
//!
//! Asserted invariants:
//!
//! * no connection or codec errors: every response parses, with the
//!   expected status and schema;
//! * snapshot versions observed on one connection are monotone
//!   non-decreasing (each response carries the serving version);
//! * nothing is lost: after a final flush, `rates_applied` equals the
//!   number of accepted `/rate` requests, and `feedback_applied` the
//!   number of accepted `/v1/feedback` requests.
//!
//! The default profile is CI-sized (a few hundred requests); set
//! `GF_LOAD_SCALE=8` (any positive integer) to multiply both the
//! connection count and the per-connection request count locally.

use gf_core::{Aggregation, FormationConfig, GrowthPolicy, RatingMatrix, RatingScale, Semantics};
use gf_serve::loadgen::{fd_budget, run_sweep, SweepConfig};
use gf_serve::{Json, NetMode, NetOptions, ServeConfig, ServeState, Server, ServerHandle};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

const N_USERS: u32 = 120;
const N_ITEMS: u32 = 24;

fn load_scale() -> usize {
    std::env::var("GF_LOAD_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

fn start_server_net(growth: GrowthPolicy, net: NetOptions) -> ServerHandle {
    let rows: Vec<Vec<f64>> = (0..N_USERS)
        .map(|u| {
            (0..N_ITEMS)
                .map(|i| 1.0 + ((u * 7 + i * 3 + u * i) % 5) as f64)
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let matrix = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
    let cfg = ServeConfig::new(
        FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 3, 8).with_growth(growth),
    )
    .with_batch_window(Duration::from_millis(1));
    let state = ServeState::new(matrix, cfg).unwrap();
    Server::bind_with("127.0.0.1:0", state, net)
        .unwrap()
        .spawn()
        .unwrap()
}

fn start_server_with(growth: GrowthPolicy) -> ServerHandle {
    // Default transport: epoll on Linux, the blocking fallback elsewhere
    // — so the main generators exercise whatever the binary would run.
    start_server_net(growth, NetOptions::default())
}

fn start_server() -> ServerHandle {
    start_server_with(GrowthPolicy::Fixed)
}

/// One persistent client connection: writes requests and reads
/// length-delimited responses off the same stream.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one keep-alive request and parses `(status, body)`.
    fn request(&mut self, method: &str, target: &str, body: &str) -> Result<(u16, Json), String> {
        let raw = format!(
            "{method} {target} HTTP/1.1\r\nhost: load\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer
            .write_all(raw.as_bytes())
            .map_err(|e| format!("write {method} {target}: {e}"))?;
        let mut status_line = String::new();
        self.reader
            .read_line(&mut status_line)
            .map_err(|e| format!("read status of {method} {target}: {e}"))?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad status line {status_line:?}"))?;
        let mut content_length: Option<usize> = None;
        loop {
            let mut line = String::new();
            self.reader
                .read_line(&mut line)
                .map_err(|e| format!("read headers: {e}"))?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(value) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = value.trim().parse().ok();
            }
        }
        let length = content_length.ok_or("response missing content-length")?;
        let mut payload = vec![0u8; length];
        self.reader
            .read_exact(&mut payload)
            .map_err(|e| format!("read body: {e}"))?;
        let text = String::from_utf8(payload).map_err(|e| format!("non-utf8 body: {e}"))?;
        let json = Json::parse(&text).map_err(|e| format!("malformed JSON {text:?}: {e}"))?;
        Ok((status, json))
    }
}

/// What one connection observed; joined and asserted on the main thread.
struct ConnReport {
    requests: usize,
    rates_accepted: usize,
    feedback_accepted: usize,
    versions_seen: usize,
}

fn drive_connection(
    addr: std::net::SocketAddr,
    seed: u64,
    n_requests: usize,
) -> Result<ConnReport, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut last_version = 0u64;
    let mut report = ConnReport {
        requests: 0,
        rates_accepted: 0,
        feedback_accepted: 0,
        versions_seen: 0,
    };
    let mut observe_version = |body: &Json, report: &mut ConnReport| -> Result<(), String> {
        let version = body
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("response carries no version: {body}"))?;
        if version < last_version {
            return Err(format!(
                "snapshot version regressed on one connection: {last_version} -> {version}"
            ));
        }
        last_version = version;
        report.versions_seen += 1;
        Ok(())
    };
    for r in 0..n_requests {
        match r % 4 {
            // Half the stream: rating updates.
            0 | 2 => {
                let user = rng.gen_range(0..N_USERS);
                let item = rng.gen_range(0..N_ITEMS);
                let rating = rng.gen_range(1..=5);
                let body = format!(r#"{{"user":{user},"item":{item},"rating":{rating}}}"#);
                let (status, json) = client.request("POST", "/rate", &body)?;
                if status != 202 {
                    return Err(format!("/rate returned {status}: {json}"));
                }
                if json.get("accepted") != Some(&Json::Bool(true)) {
                    return Err(format!("/rate not accepted: {json}"));
                }
                observe_version(&json, &mut report)?;
                report.rates_accepted += 1;
            }
            // Group lookups, sometimes paged.
            1 => {
                let user = rng.gen_range(0..N_USERS);
                let target = if rng.gen_bool(0.3) {
                    format!("/group/{user}?limit=2&offset=1")
                } else {
                    format!("/group/{user}")
                };
                let (status, json) = client.request("GET", &target, "")?;
                if status != 200 {
                    return Err(format!("{target} returned {status}: {json}"));
                }
                let total = json
                    .get("members_total")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{target}: no members_total: {json}"))?;
                let rendered = json
                    .get("members")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("{target}: no members: {json}"))?
                    .len() as u64;
                if rendered > total {
                    return Err(format!("{target}: rendered {rendered} of {total}"));
                }
                observe_version(&json, &mut report)?;
            }
            // Feedback journaling and stats reads round out the mix.
            _ => {
                if rng.gen_bool(0.5) {
                    let user = rng.gen_range(0..N_USERS);
                    let item = rng.gen_range(0..N_ITEMS);
                    let body = format!(r#"{{"user":{user},"item":{item}}}"#);
                    let (status, json) = client.request("POST", "/v1/feedback", &body)?;
                    if status != 202 {
                        return Err(format!("/v1/feedback returned {status}: {json}"));
                    }
                    observe_version(&json, &mut report)?;
                    report.feedback_accepted += 1;
                } else {
                    let (status, json) = client.request("GET", "/v1/stats", "")?;
                    if status != 200 {
                        return Err(format!("/v1/stats returned {status}: {json}"));
                    }
                    observe_version(&json, &mut report)?;
                }
            }
        }
        report.requests += 1;
    }
    Ok(report)
}

/// One admission-heavy connection: interleaves rates on existing users
/// with rates that admit users from a per-connection disjoint id range
/// (so connections never race on who admits an id first), reading
/// `/group` on both populations along the way.
fn drive_admissions(
    addr: std::net::SocketAddr,
    seed: u64,
    n_requests: usize,
    new_lo: u32,
    new_hi: u32,
) -> Result<ConnReport, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut last_version = 0u64;
    let mut admitted: Vec<u32> = Vec::new();
    let mut report = ConnReport {
        requests: 0,
        rates_accepted: 0,
        feedback_accepted: 0,
        versions_seen: 0,
    };
    for r in 0..n_requests {
        let (target_user, item): (u32, u32) = match r % 3 {
            // A third of the stream admits (or re-rates) a user from this
            // connection's own never-seen range, sometimes on a
            // never-seen item.
            0 => {
                let user = rng.gen_range(new_lo..new_hi);
                admitted.push(user);
                let item = if rng.gen_bool(0.5) {
                    N_ITEMS + rng.gen_range(0..8)
                } else {
                    rng.gen_range(0..N_ITEMS)
                };
                (user, item)
            }
            1 => (rng.gen_range(0..N_USERS), rng.gen_range(0..N_ITEMS)),
            // Read back someone this connection already admitted (or an
            // original user while nothing is admitted yet).
            _ => {
                let user = admitted
                    .get(rng.gen_range(0..admitted.len().max(1)))
                    .copied()
                    .unwrap_or_else(|| rng.gen_range(0..N_USERS));
                let (status, json) = client.request("GET", &format!("/group/{user}"), "")?;
                // An admitted user may still be journal-pending: 404 until
                // the background pass lands, 200 with membership after.
                if status == 200 {
                    let version = json
                        .get("version")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("no version: {json}"))?;
                    if version < last_version {
                        return Err(format!("version regressed: {last_version} -> {version}"));
                    }
                    last_version = version;
                } else if status != 404 {
                    return Err(format!("/group/{user} returned {status}: {json}"));
                }
                report.versions_seen += 1;
                report.requests += 1;
                continue;
            }
        };
        let rating = rng.gen_range(1..=5);
        let body = format!(r#"{{"user":{target_user},"item":{item},"rating":{rating}}}"#);
        let (status, json) = client.request("POST", "/rate", &body)?;
        if status != 202 {
            return Err(format!("/rate {body} returned {status}: {json}"));
        }
        let version = json
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("no version: {json}"))?;
        if version < last_version {
            return Err(format!("version regressed: {last_version} -> {version}"));
        }
        last_version = version;
        report.versions_seen += 1;
        report.rates_accepted += 1;
        report.requests += 1;
    }
    Ok(report)
}

/// Growth under load: admissions interleaved with ordinary rates across
/// persistent connections — zero lost updates, per-connection monotone
/// versions, and every admitted user served from the final snapshot.
#[test]
fn admission_load_generator() {
    let scale = load_scale();
    let n_connections = 6 * scale;
    let n_requests = 30 * scale;
    let per_conn_ids = 16u32;
    let server = start_server_with(GrowthPolicy::unbounded());
    let addr = server.addr();

    let workers: Vec<_> = (0..n_connections)
        .map(|c| {
            let lo = N_USERS + c as u32 * per_conn_ids;
            let hi = lo + per_conn_ids;
            std::thread::spawn(move || {
                drive_admissions(addr, 0xAD417 + c as u64, n_requests, lo, hi)
            })
        })
        .collect();
    let mut total_rates = 0usize;
    for (c, worker) in workers.into_iter().enumerate() {
        let report = worker
            .join()
            .expect("connection thread panicked")
            .unwrap_or_else(|e| panic!("connection {c}: {e}"));
        assert_eq!(report.requests, n_requests, "connection {c} fell short");
        total_rates += report.rates_accepted;
    }

    server.state().flush().unwrap();
    let stats = &server.state().stats;
    assert_eq!(
        stats.rates_accepted.load(Ordering::Relaxed),
        total_rates as u64
    );
    assert_eq!(
        stats.rates_applied.load(Ordering::Relaxed),
        total_rates as u64
    );
    assert_eq!(server.state().pending_len(), 0);
    let snap = server.state().snapshot();
    assert!(snap.matrix.n_users() > N_USERS, "no admission ever landed");
    assert_eq!(
        stats.users_admitted.load(Ordering::Relaxed),
        u64::from(snap.matrix.n_users() - N_USERS)
    );
    assert_eq!(
        stats.items_admitted.load(Ordering::Relaxed),
        u64::from(snap.matrix.n_items() - N_ITEMS)
    );
    // Every user — original or admitted — resolves from the final
    // snapshot, and the grouping is internally consistent.
    snap.default_grouping()
        .formation
        .grouping
        .validate(snap.matrix.n_users(), 8)
        .unwrap();
    assert!(snap
        .default_grouping()
        .assignment
        .iter()
        .all(Option::is_some));
    server.stop();
}

#[test]
fn keep_alive_load_generator() {
    let scale = load_scale();
    let n_connections = 8 * scale;
    let n_requests = 40 * scale;
    let server = start_server();
    let addr = server.addr();

    let workers: Vec<_> = (0..n_connections)
        .map(|c| std::thread::spawn(move || drive_connection(addr, 0x10AD + c as u64, n_requests)))
        .collect();
    let mut total_requests = 0usize;
    let mut total_rates = 0usize;
    let mut total_feedback = 0usize;
    for (c, worker) in workers.into_iter().enumerate() {
        let report = worker
            .join()
            .expect("connection thread panicked")
            .unwrap_or_else(|e| panic!("connection {c}: {e}"));
        assert_eq!(report.requests, n_requests, "connection {c} fell short");
        assert_eq!(
            report.versions_seen, n_requests,
            "connection {c} saw versionless responses"
        );
        total_requests += report.requests;
        total_rates += report.rates_accepted;
        total_feedback += report.feedback_accepted;
    }
    assert_eq!(total_requests, n_connections * n_requests);

    // Nothing lost: drain the journal and reconcile the counters.
    server.state().flush().unwrap();
    let stats = &server.state().stats;
    assert_eq!(
        stats.rates_accepted.load(Ordering::Relaxed),
        total_rates as u64
    );
    assert_eq!(
        stats.rates_applied.load(Ordering::Relaxed),
        total_rates as u64
    );
    assert!(total_feedback > 0, "the mix never exercised /v1/feedback");
    assert_eq!(
        stats.feedback_accepted.load(Ordering::Relaxed),
        total_feedback as u64
    );
    assert_eq!(
        stats.feedback_applied.load(Ordering::Relaxed),
        total_feedback as u64
    );
    assert_eq!(
        server.state().snapshot().feedback.observed_total(),
        total_feedback as u64
    );
    assert_eq!(server.state().pending_len(), 0);
    // The refresh worker really ran while the load was in flight, and the
    // post-load snapshot is internally consistent.
    assert!(stats.refresh_passes.load(Ordering::Relaxed) >= 1);
    let snap = server.state().snapshot();
    assert!(snap.version > 1);
    snap.default_grouping()
        .formation
        .grouping
        .validate(N_USERS, 8)
        .unwrap();
    server.stop();
}

/// The same mixed keep-alive workload over the blocking fallback
/// transport (the default tests above cover epoll on Linux): both
/// transports must uphold the zero-lost-updates and monotone-version
/// invariants, not just the default one.
#[test]
fn keep_alive_load_generator_blocking_transport() {
    let n_connections = 4;
    let n_requests = 24;
    let server = start_server_net(
        GrowthPolicy::Fixed,
        NetOptions {
            mode: NetMode::Blocking,
            ..NetOptions::default()
        },
    );
    let addr = server.addr();
    let workers: Vec<_> = (0..n_connections)
        .map(|c| std::thread::spawn(move || drive_connection(addr, 0xB10C + c as u64, n_requests)))
        .collect();
    let mut total_rates = 0usize;
    for (c, worker) in workers.into_iter().enumerate() {
        let report = worker
            .join()
            .expect("connection thread panicked")
            .unwrap_or_else(|e| panic!("connection {c}: {e}"));
        assert_eq!(report.requests, n_requests, "connection {c} fell short");
        total_rates += report.rates_accepted;
    }
    server.state().flush().unwrap();
    let stats = &server.state().stats;
    assert_eq!(
        stats.rates_accepted.load(Ordering::Relaxed),
        total_rates as u64
    );
    assert_eq!(
        stats.rates_applied.load(Ordering::Relaxed),
        total_rates as u64
    );
    assert!(stats.conns_accepted.load(Ordering::Relaxed) >= n_connections as u64);
    server.stop();
}

/// CI-sized connection sweep against the in-process server: 100
/// persistent keep-alive connections (clamped to the fd budget) of
/// interleaved `/v1/rate` + `/v1/group` + `/v1/stats`, asserting zero
/// unexpected statuses, per-connection monotone versions (checked
/// inside the harness) and zero lost updates afterwards.
#[test]
fn connection_sweep_in_process() {
    let server = start_server();
    let cfg = SweepConfig {
        connections: 100.min(fd_budget().saturating_sub(64).max(8)),
        requests_per_conn: 4 * load_scale(),
        threads: 0,
        users: N_USERS,
        items: N_ITEMS,
    };
    let report = run_sweep(server.addr(), &cfg).unwrap_or_else(|e| panic!("sweep failed: {e}"));
    println!("sweep[in-process]: {}", report.summary());
    assert_eq!(
        report.errors,
        0,
        "unexpected statuses: {}",
        report.summary()
    );
    assert_eq!(
        report.requests,
        (cfg.connections * cfg.requests_per_conn) as u64
    );
    assert!(report.max_version >= 1, "no response carried a version");
    server.state().flush().unwrap();
    let stats = &server.state().stats;
    assert_eq!(
        stats.rates_accepted.load(Ordering::Relaxed),
        report.rates_accepted,
        "accepted-rate ledgers disagree"
    );
    assert_eq!(
        stats.rates_applied.load(Ordering::Relaxed),
        report.rates_accepted,
        "a rate was acknowledged but never applied"
    );
    server.stop();
}

/// The full 100 → 1k → 10k persistent-connection sweep against a real
/// `gf-serve` process (two processes, so neither side's fd table caps
/// the other). Heavy — gated on `GF_SWEEP_10K=1`; the quick-bench CI
/// job and the EXPERIMENTS.md table run it via
/// `GF_SWEEP_10K=1 cargo test --release -p gf-serve --test load connection_sweep_10k -- --nocapture --ignored`.
#[test]
#[ignore = "10k-connection sweep; set GF_SWEEP_10K=1 and run with --ignored"]
fn connection_sweep_10k() {
    if std::env::var("GF_SWEEP_10K").is_err() {
        eprintln!("connection_sweep_10k: GF_SWEEP_10K not set, skipping");
        return;
    }
    let users = 500u32;
    let items = 60u32;
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_gf-serve"))
        .args([
            "--addr",
            "127.0.0.1",
            "--port",
            "0",
            "--synth",
            &format!("{users}x{items}"),
            "--batch-window-ms",
            "1",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn gf-serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let addr: std::net::SocketAddr = {
        let mut line = String::new();
        loop {
            line.clear();
            let n = stdout.read_line(&mut line).unwrap();
            assert!(n > 0, "gf-serve exited before printing the listening line");
            if let Some(rest) = line.split("listening on http://").nth(1) {
                break rest
                    .split_whitespace()
                    .next()
                    .expect("address after http://")
                    .parse()
                    .expect("parseable listen address");
            }
        }
    };
    let budget = fd_budget().saturating_sub(256);
    let mut total_rates = 0u64;
    for &(conns, reqs) in &[(100usize, 20usize), (1_000, 10), (10_000, 3)] {
        let conns = conns.min(budget);
        let report = run_sweep(
            addr,
            &SweepConfig {
                connections: conns,
                requests_per_conn: reqs,
                threads: 0,
                users,
                items,
            },
        )
        .unwrap_or_else(|e| panic!("sweep at {conns} connections failed: {e}"));
        println!("sweep[10k]: {}", report.summary());
        assert_eq!(report.errors, 0, "bad statuses at {conns} connections");
        assert_eq!(report.requests, (conns * reqs) as u64);
        total_rates += report.rates_accepted;
    }
    // Zero lost updates across the process boundary: poll /v1/stats until
    // the background refresh has applied every acknowledged rate.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let scan = |body: &str, key: &str| -> u64 {
        body.split_once(&format!("\"{key}\":"))
            .and_then(|(_, rest)| {
                rest.chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse()
                    .ok()
            })
            .unwrap_or(u64::MAX)
    };
    loop {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /v1/stats HTTP/1.1\r\nconnection: close\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let accepted = scan(&raw, "rates_accepted");
        let applied = scan(&raw, "rates_applied");
        if accepted == total_rates && applied == total_rates {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "ledger never reconciled: accepted={accepted} applied={applied} sent={total_rates}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    let _ = child.kill();
    let _ = child.wait();
}
