//! Socket-level keep-alive load generator: N persistent connections
//! streaming interleaved `POST /rate` and `GET /group/{u}` (plus paged
//! reads, `POST /v1/feedback` and `/v1/stats` reads) against a real
//! [`Server`] — the accept loop, thread-per-connection handlers and
//! background refresh worker the `gf-serve` binary runs — while
//! refreshes swap snapshots underneath.
//!
//! Asserted invariants:
//!
//! * no connection or codec errors: every response parses, with the
//!   expected status and schema;
//! * snapshot versions observed on one connection are monotone
//!   non-decreasing (each response carries the serving version);
//! * nothing is lost: after a final flush, `rates_applied` equals the
//!   number of accepted `/rate` requests, and `feedback_applied` the
//!   number of accepted `/v1/feedback` requests.
//!
//! The default profile is CI-sized (a few hundred requests); set
//! `GF_LOAD_SCALE=8` (any positive integer) to multiply both the
//! connection count and the per-connection request count locally.

use gf_core::{Aggregation, FormationConfig, GrowthPolicy, RatingMatrix, RatingScale, Semantics};
use gf_serve::{Json, ServeConfig, ServeState, Server, ServerHandle};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

const N_USERS: u32 = 120;
const N_ITEMS: u32 = 24;

fn load_scale() -> usize {
    std::env::var("GF_LOAD_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

fn start_server_with(growth: GrowthPolicy) -> ServerHandle {
    let rows: Vec<Vec<f64>> = (0..N_USERS)
        .map(|u| {
            (0..N_ITEMS)
                .map(|i| 1.0 + ((u * 7 + i * 3 + u * i) % 5) as f64)
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let matrix = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
    let cfg = ServeConfig::new(
        FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 3, 8).with_growth(growth),
    )
    .with_batch_window(Duration::from_millis(1));
    let state = ServeState::new(matrix, cfg).unwrap();
    Server::bind("127.0.0.1:0", state).unwrap().spawn().unwrap()
}

fn start_server() -> ServerHandle {
    start_server_with(GrowthPolicy::Fixed)
}

/// One persistent client connection: writes requests and reads
/// length-delimited responses off the same stream.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one keep-alive request and parses `(status, body)`.
    fn request(&mut self, method: &str, target: &str, body: &str) -> Result<(u16, Json), String> {
        let raw = format!(
            "{method} {target} HTTP/1.1\r\nhost: load\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer
            .write_all(raw.as_bytes())
            .map_err(|e| format!("write {method} {target}: {e}"))?;
        let mut status_line = String::new();
        self.reader
            .read_line(&mut status_line)
            .map_err(|e| format!("read status of {method} {target}: {e}"))?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad status line {status_line:?}"))?;
        let mut content_length: Option<usize> = None;
        loop {
            let mut line = String::new();
            self.reader
                .read_line(&mut line)
                .map_err(|e| format!("read headers: {e}"))?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(value) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = value.trim().parse().ok();
            }
        }
        let length = content_length.ok_or("response missing content-length")?;
        let mut payload = vec![0u8; length];
        self.reader
            .read_exact(&mut payload)
            .map_err(|e| format!("read body: {e}"))?;
        let text = String::from_utf8(payload).map_err(|e| format!("non-utf8 body: {e}"))?;
        let json = Json::parse(&text).map_err(|e| format!("malformed JSON {text:?}: {e}"))?;
        Ok((status, json))
    }
}

/// What one connection observed; joined and asserted on the main thread.
struct ConnReport {
    requests: usize,
    rates_accepted: usize,
    feedback_accepted: usize,
    versions_seen: usize,
}

fn drive_connection(
    addr: std::net::SocketAddr,
    seed: u64,
    n_requests: usize,
) -> Result<ConnReport, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut last_version = 0u64;
    let mut report = ConnReport {
        requests: 0,
        rates_accepted: 0,
        feedback_accepted: 0,
        versions_seen: 0,
    };
    let mut observe_version = |body: &Json, report: &mut ConnReport| -> Result<(), String> {
        let version = body
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("response carries no version: {body}"))?;
        if version < last_version {
            return Err(format!(
                "snapshot version regressed on one connection: {last_version} -> {version}"
            ));
        }
        last_version = version;
        report.versions_seen += 1;
        Ok(())
    };
    for r in 0..n_requests {
        match r % 4 {
            // Half the stream: rating updates.
            0 | 2 => {
                let user = rng.gen_range(0..N_USERS);
                let item = rng.gen_range(0..N_ITEMS);
                let rating = rng.gen_range(1..=5);
                let body = format!(r#"{{"user":{user},"item":{item},"rating":{rating}}}"#);
                let (status, json) = client.request("POST", "/rate", &body)?;
                if status != 202 {
                    return Err(format!("/rate returned {status}: {json}"));
                }
                if json.get("accepted") != Some(&Json::Bool(true)) {
                    return Err(format!("/rate not accepted: {json}"));
                }
                observe_version(&json, &mut report)?;
                report.rates_accepted += 1;
            }
            // Group lookups, sometimes paged.
            1 => {
                let user = rng.gen_range(0..N_USERS);
                let target = if rng.gen_bool(0.3) {
                    format!("/group/{user}?limit=2&offset=1")
                } else {
                    format!("/group/{user}")
                };
                let (status, json) = client.request("GET", &target, "")?;
                if status != 200 {
                    return Err(format!("{target} returned {status}: {json}"));
                }
                let total = json
                    .get("members_total")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{target}: no members_total: {json}"))?;
                let rendered = json
                    .get("members")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("{target}: no members: {json}"))?
                    .len() as u64;
                if rendered > total {
                    return Err(format!("{target}: rendered {rendered} of {total}"));
                }
                observe_version(&json, &mut report)?;
            }
            // Feedback journaling and stats reads round out the mix.
            _ => {
                if rng.gen_bool(0.5) {
                    let user = rng.gen_range(0..N_USERS);
                    let item = rng.gen_range(0..N_ITEMS);
                    let body = format!(r#"{{"user":{user},"item":{item}}}"#);
                    let (status, json) = client.request("POST", "/v1/feedback", &body)?;
                    if status != 202 {
                        return Err(format!("/v1/feedback returned {status}: {json}"));
                    }
                    observe_version(&json, &mut report)?;
                    report.feedback_accepted += 1;
                } else {
                    let (status, json) = client.request("GET", "/v1/stats", "")?;
                    if status != 200 {
                        return Err(format!("/v1/stats returned {status}: {json}"));
                    }
                    observe_version(&json, &mut report)?;
                }
            }
        }
        report.requests += 1;
    }
    Ok(report)
}

/// One admission-heavy connection: interleaves rates on existing users
/// with rates that admit users from a per-connection disjoint id range
/// (so connections never race on who admits an id first), reading
/// `/group` on both populations along the way.
fn drive_admissions(
    addr: std::net::SocketAddr,
    seed: u64,
    n_requests: usize,
    new_lo: u32,
    new_hi: u32,
) -> Result<ConnReport, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut last_version = 0u64;
    let mut admitted: Vec<u32> = Vec::new();
    let mut report = ConnReport {
        requests: 0,
        rates_accepted: 0,
        feedback_accepted: 0,
        versions_seen: 0,
    };
    for r in 0..n_requests {
        let (target_user, item): (u32, u32) = match r % 3 {
            // A third of the stream admits (or re-rates) a user from this
            // connection's own never-seen range, sometimes on a
            // never-seen item.
            0 => {
                let user = rng.gen_range(new_lo..new_hi);
                admitted.push(user);
                let item = if rng.gen_bool(0.5) {
                    N_ITEMS + rng.gen_range(0..8)
                } else {
                    rng.gen_range(0..N_ITEMS)
                };
                (user, item)
            }
            1 => (rng.gen_range(0..N_USERS), rng.gen_range(0..N_ITEMS)),
            // Read back someone this connection already admitted (or an
            // original user while nothing is admitted yet).
            _ => {
                let user = admitted
                    .get(rng.gen_range(0..admitted.len().max(1)))
                    .copied()
                    .unwrap_or_else(|| rng.gen_range(0..N_USERS));
                let (status, json) = client.request("GET", &format!("/group/{user}"), "")?;
                // An admitted user may still be journal-pending: 404 until
                // the background pass lands, 200 with membership after.
                if status == 200 {
                    let version = json
                        .get("version")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("no version: {json}"))?;
                    if version < last_version {
                        return Err(format!("version regressed: {last_version} -> {version}"));
                    }
                    last_version = version;
                } else if status != 404 {
                    return Err(format!("/group/{user} returned {status}: {json}"));
                }
                report.versions_seen += 1;
                report.requests += 1;
                continue;
            }
        };
        let rating = rng.gen_range(1..=5);
        let body = format!(r#"{{"user":{target_user},"item":{item},"rating":{rating}}}"#);
        let (status, json) = client.request("POST", "/rate", &body)?;
        if status != 202 {
            return Err(format!("/rate {body} returned {status}: {json}"));
        }
        let version = json
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("no version: {json}"))?;
        if version < last_version {
            return Err(format!("version regressed: {last_version} -> {version}"));
        }
        last_version = version;
        report.versions_seen += 1;
        report.rates_accepted += 1;
        report.requests += 1;
    }
    Ok(report)
}

/// Growth under load: admissions interleaved with ordinary rates across
/// persistent connections — zero lost updates, per-connection monotone
/// versions, and every admitted user served from the final snapshot.
#[test]
fn admission_load_generator() {
    let scale = load_scale();
    let n_connections = 6 * scale;
    let n_requests = 30 * scale;
    let per_conn_ids = 16u32;
    let server = start_server_with(GrowthPolicy::unbounded());
    let addr = server.addr();

    let workers: Vec<_> = (0..n_connections)
        .map(|c| {
            let lo = N_USERS + c as u32 * per_conn_ids;
            let hi = lo + per_conn_ids;
            std::thread::spawn(move || {
                drive_admissions(addr, 0xAD417 + c as u64, n_requests, lo, hi)
            })
        })
        .collect();
    let mut total_rates = 0usize;
    for (c, worker) in workers.into_iter().enumerate() {
        let report = worker
            .join()
            .expect("connection thread panicked")
            .unwrap_or_else(|e| panic!("connection {c}: {e}"));
        assert_eq!(report.requests, n_requests, "connection {c} fell short");
        total_rates += report.rates_accepted;
    }

    server.state().flush().unwrap();
    let stats = &server.state().stats;
    assert_eq!(
        stats.rates_accepted.load(Ordering::Relaxed),
        total_rates as u64
    );
    assert_eq!(
        stats.rates_applied.load(Ordering::Relaxed),
        total_rates as u64
    );
    assert_eq!(server.state().pending_len(), 0);
    let snap = server.state().snapshot();
    assert!(snap.matrix.n_users() > N_USERS, "no admission ever landed");
    assert_eq!(
        stats.users_admitted.load(Ordering::Relaxed),
        u64::from(snap.matrix.n_users() - N_USERS)
    );
    assert_eq!(
        stats.items_admitted.load(Ordering::Relaxed),
        u64::from(snap.matrix.n_items() - N_ITEMS)
    );
    // Every user — original or admitted — resolves from the final
    // snapshot, and the grouping is internally consistent.
    snap.default_grouping()
        .formation
        .grouping
        .validate(snap.matrix.n_users(), 8)
        .unwrap();
    assert!(snap
        .default_grouping()
        .assignment
        .iter()
        .all(Option::is_some));
    server.stop();
}

#[test]
fn keep_alive_load_generator() {
    let scale = load_scale();
    let n_connections = 8 * scale;
    let n_requests = 40 * scale;
    let server = start_server();
    let addr = server.addr();

    let workers: Vec<_> = (0..n_connections)
        .map(|c| std::thread::spawn(move || drive_connection(addr, 0x10AD + c as u64, n_requests)))
        .collect();
    let mut total_requests = 0usize;
    let mut total_rates = 0usize;
    let mut total_feedback = 0usize;
    for (c, worker) in workers.into_iter().enumerate() {
        let report = worker
            .join()
            .expect("connection thread panicked")
            .unwrap_or_else(|e| panic!("connection {c}: {e}"));
        assert_eq!(report.requests, n_requests, "connection {c} fell short");
        assert_eq!(
            report.versions_seen, n_requests,
            "connection {c} saw versionless responses"
        );
        total_requests += report.requests;
        total_rates += report.rates_accepted;
        total_feedback += report.feedback_accepted;
    }
    assert_eq!(total_requests, n_connections * n_requests);

    // Nothing lost: drain the journal and reconcile the counters.
    server.state().flush().unwrap();
    let stats = &server.state().stats;
    assert_eq!(
        stats.rates_accepted.load(Ordering::Relaxed),
        total_rates as u64
    );
    assert_eq!(
        stats.rates_applied.load(Ordering::Relaxed),
        total_rates as u64
    );
    assert!(total_feedback > 0, "the mix never exercised /v1/feedback");
    assert_eq!(
        stats.feedback_accepted.load(Ordering::Relaxed),
        total_feedback as u64
    );
    assert_eq!(
        stats.feedback_applied.load(Ordering::Relaxed),
        total_feedback as u64
    );
    assert_eq!(
        server.state().snapshot().feedback.observed_total(),
        total_feedback as u64
    );
    assert_eq!(server.state().pending_len(), 0);
    // The refresh worker really ran while the load was in flight, and the
    // post-load snapshot is internally consistent.
    assert!(stats.refresh_passes.load(Ordering::Relaxed) >= 1);
    let snap = server.state().snapshot();
    assert!(snap.version > 1);
    snap.default_grouping()
        .formation
        .grouping
        .validate(N_USERS, 8)
        .unwrap();
    server.stop();
}
