//! Route-table synchronization: the three places the HTTP surface is
//! written down — [`gf_serve::ROUTE_TABLE`], the endpoint table in
//! `src/http.rs`'s module docs, and the endpoint table in the repository
//! `README.md` — must list exactly the same `(method, /v1 path)` rows,
//! and every row must dispatch to a real handler. Documentation drifting
//! from the implementation fails here, not in a user's terminal.

use gf_core::{Aggregation, FormationConfig, RatingMatrix, RatingScale, Semantics};
use gf_serve::http::route;
use gf_serve::{HttpRequest, ServeConfig, ServeState, ROUTE_TABLE};
use std::path::{Path, PathBuf};

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extracts `(METHOD, /v1/path)` pairs from backticked cells of a
/// markdown table, query strings stripped — the normal form all three
/// sources are compared in.
fn extract_routes(markdown_rows: &[&str]) -> Vec<(String, String)> {
    let mut routes = Vec::new();
    for row in markdown_rows {
        for cell in row.split('`') {
            let mut words = cell.split_whitespace();
            let (Some(method), Some(target)) = (words.next(), words.next()) else {
                continue;
            };
            if !matches!(method, "GET" | "POST" | "PUT" | "DELETE") {
                continue;
            }
            let path = target.split('?').next().unwrap();
            if path.starts_with("/v1/") {
                routes.push((method.to_string(), path.to_string()));
            }
        }
    }
    routes.sort();
    routes.dedup();
    routes
}

/// The markdown table rows of `text` between `start_marker` and the end
/// of that table (first subsequent line that is not a `|` row).
fn table_rows<'a>(text: &'a str, start_marker: &str, source: &str) -> Vec<&'a str> {
    let start = text
        .find(start_marker)
        .unwrap_or_else(|| panic!("{source}: marker {start_marker:?} not found"));
    text[start..]
        .lines()
        .skip(1) // the header row itself
        .take_while(|l| l.trim_start().starts_with('|') || l.trim_start().starts_with("//! |"))
        .collect()
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn live_routes() -> Vec<(String, String)> {
    let mut routes: Vec<(String, String)> = ROUTE_TABLE
        .iter()
        .map(|(m, p)| (m.to_string(), p.to_string()))
        .collect();
    routes.sort();
    routes
}

#[test]
fn http_module_docs_match_the_live_route_table() {
    let source = read(&manifest_dir().join("src/http.rs"));
    let rows = table_rows(&source, "//! | method & path |", "src/http.rs");
    assert_eq!(
        extract_routes(&rows),
        live_routes(),
        "the endpoint table in src/http.rs module docs drifted from ROUTE_TABLE"
    );
}

#[test]
fn readme_endpoint_table_matches_the_live_route_table() {
    let readme = read(&manifest_dir().join("../../README.md"));
    let rows = table_rows(&readme, "| endpoint | behaviour |", "README.md");
    assert_eq!(
        extract_routes(&rows),
        live_routes(),
        "the README endpoint table drifted from ROUTE_TABLE"
    );
}

#[test]
fn every_documented_route_reaches_a_handler_on_both_surfaces() {
    let matrix = RatingMatrix::from_dense(
        &[
            &[1.0, 4.0, 3.0][..],
            &[2.0, 3.0, 5.0],
            &[2.0, 5.0, 1.0],
            &[3.0, 1.0, 1.0],
        ],
        RatingScale::one_to_five(),
    )
    .unwrap();
    let cfg = ServeConfig::new(FormationConfig::new(
        Semantics::LeastMisery,
        Aggregation::Min,
        2,
        2,
    ));
    let state = ServeState::new(matrix, cfg).unwrap();
    for (method, pattern) in ROUTE_TABLE {
        let concrete = pattern
            .replace("{name}", "default")
            .replace("{user}", "0")
            .replace("{group}", "0");
        // Both the canonical path and its unversioned alias must resolve
        // past routing: any status except 404 unknown_endpoint / 405
        // proves a handler ran (POSTs answer 400 to the empty body).
        for path in [concrete.clone(), concrete["/v1".len()..].to_string()] {
            let (status, body) = route(
                &state,
                &HttpRequest {
                    method: (*method).to_string(),
                    path: path.clone(),
                    query: String::new(),
                    body: String::new(),
                    keep_alive: false,
                },
            );
            assert_ne!(status, 405, "{method} {path} hit the wrong-method arm");
            let code = body
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(gf_serve::Json::as_str)
                .unwrap_or("");
            assert_ne!(
                code, "unknown_endpoint",
                "{method} {path} fell through routing: {body}"
            );
        }
    }
}
