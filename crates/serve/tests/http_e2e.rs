//! End-to-end HTTP tests: a real `Server` on an OS-assigned port, driven
//! through raw `TcpStream`s exactly like an external client would.

use gf_core::{Aggregation, FormationConfig, RatingMatrix, RatingScale, Semantics};
use gf_serve::{Json, ServeConfig, ServeState, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn start_server() -> gf_serve::ServerHandle {
    let rows: Vec<Vec<f64>> = (0..16)
        .map(|u| {
            (0..6)
                .map(|i| 1.0 + ((u * 5 + i * 3 + u * i) % 5) as f64)
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let matrix = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
    let cfg = ServeConfig::new(FormationConfig::new(
        Semantics::LeastMisery,
        Aggregation::Min,
        2,
        4,
    ))
    .with_batch_window(Duration::from_millis(1));
    let state = ServeState::new(matrix, cfg).unwrap();
    Server::bind("127.0.0.1:0", state).unwrap().spawn().unwrap()
}

/// Sends one raw HTTP/1.1 request and returns `(status, body)`.
fn send(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    parse_response(&response)
}

fn parse_response(response: &str) -> (u16, String) {
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    send(
        addr,
        &format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    send(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn full_request_cycle_over_tcp() {
    let server = start_server();
    let addr = server.addr();

    let (status, body) = get(addr, "/health");
    assert_eq!(status, 200);
    let health = Json::parse(&body).expect("health is valid JSON");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("users").and_then(Json::as_u64), Some(16));

    let (status, body) = get(addr, "/group/7");
    assert_eq!(status, 200);
    let group = Json::parse(&body).unwrap();
    assert!(group
        .get("members")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .any(|m| m.as_u64() == Some(7)));

    // Pagination survives the wire: the query string reaches the router.
    let (status, body) = get(addr, "/group/7?limit=1&offset=0");
    assert_eq!(status, 200);
    let paged = Json::parse(&body).unwrap();
    assert_eq!(
        paged.get("members").and_then(Json::as_arr).map(<[_]>::len),
        Some(1)
    );
    assert_eq!(
        paged.get("members_total").and_then(Json::as_u64),
        group.get("members_total").and_then(Json::as_u64)
    );
    let (status, _) = get(addr, "/group/7?limit=bogus");
    assert_eq!(status, 400);

    let (status, body) = post(addr, "/rate", r#"{"user":7,"item":2,"rating":5}"#);
    assert_eq!(status, 202);
    assert_eq!(
        Json::parse(&body).unwrap().get("accepted"),
        Some(&Json::Bool(true))
    );

    // The background worker picks the rating up without any flush call.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.state().snapshot().matrix.get(7, 2) != Some(5.0) {
        assert!(std::time::Instant::now() < deadline, "rating never applied");
        std::thread::sleep(Duration::from_millis(2));
    }

    let (status, body) = post(
        addr,
        "/form",
        r#"{"semantics":"av","aggregation":"sum","ell":3}"#,
    );
    assert_eq!(status, 200);
    let formed = Json::parse(&body).unwrap();
    assert_eq!(
        formed.get("algorithm").and_then(Json::as_str),
        Some("GRD-AV-SUM")
    );

    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200);
    let stats = Json::parse(&body).unwrap();
    assert_eq!(stats.get("rates_applied").and_then(Json::as_u64), Some(1));

    // Error paths speak JSON too.
    let (status, body) = get(addr, "/group/9999");
    assert_eq!(status, 404);
    assert!(Json::parse(&body).unwrap().get("error").is_some());
    let (status, _) = post(addr, "/rate", "{broken");
    assert_eq!(status, 400);

    server.stop();
}

#[test]
fn keep_alive_serves_sequential_requests() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // Two requests on one connection; responses are length-delimited.
    for _ in 0..2 {
        stream
            .write_all(b"GET /health HTTP/1.1\r\nhost: t\r\n\r\n")
            .unwrap();
        let mut header = Vec::new();
        let mut byte = [0u8; 1];
        while !header.ends_with(b"\r\n\r\n") {
            stream.read_exact(&mut byte).unwrap();
            header.push(byte[0]);
        }
        let head = String::from_utf8(header).unwrap();
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let length: usize = head
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(str::trim)
                    .map(String::from)
            })
            .and_then(|v| v.parse().ok())
            .expect("content-length present");
        let mut body = vec![0u8; length];
        stream.read_exact(&mut body).unwrap();
        let parsed = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
    }
    server.stop();
}

#[test]
fn malformed_requests_get_400_not_a_hang() {
    let server = start_server();
    let (status, _) = send(server.addr(), "NONSENSE\r\n\r\n");
    assert_eq!(status, 400);
    let (status, _) = send(
        server.addr(),
        "GET /health HTTP/1.1\r\ncontent-length: bogus\r\n\r\n",
    );
    assert_eq!(status, 400);
    server.stop();
}

#[test]
fn truncated_request_is_dropped_not_dispatched() {
    let server = start_server();
    // Request line but no end-of-headers: the client dies mid-request.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"POST /form HTTP/1.1\r\n").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(
        response.is_empty(),
        "truncated request must get no response, got {response:?}"
    );
    // And, crucially, it must not have triggered a formation run.
    assert_eq!(
        server
            .state()
            .stats
            .form_runs
            .load(std::sync::atomic::Ordering::Relaxed),
        0
    );
    server.stop();
}
