//! Property tests for the serving state — chiefly the acceptance-criteria
//! invariant: the incremental `/rate` path (matrix upsert + per-user
//! preference patch + background re-formation) converges to **exactly**
//! the snapshot a cold rebuild over the same final ratings produces.

use gf_core::{Aggregation, FormationConfig, PrefIndex, RatingMatrix, RatingScale, Semantics};
use gf_serve::{ServeConfig, ServeState};
use proptest::prelude::*;
use std::time::Duration;

/// A random sparse rating instance on the 1..5 integer scale, guaranteed
/// at least one rating (the serve layer rejects empty matrices).
#[derive(Debug, Clone)]
struct Instance {
    n: u32,
    m: u32,
    triples: Vec<(u32, u32, f64)>,
}

fn instance(max_users: u32, max_items: u32) -> impl Strategy<Value = Instance> {
    (2..=max_users, 2..=max_items)
        .prop_flat_map(|(n, m)| {
            let cell = (0..n, 0..m, 1..=5u8, any::<bool>());
            (
                Just(n),
                Just(m),
                proptest::collection::vec(cell, 1..(n as usize * m as usize).min(48)),
            )
        })
        .prop_map(|(n, m, cells)| {
            let mut seen = std::collections::HashSet::new();
            let mut triples = Vec::new();
            for (u, i, r, keep) in cells {
                if keep && seen.insert((u, i)) {
                    triples.push((u, i, r as f64));
                }
            }
            if triples.is_empty() {
                triples.push((0, 0, 3.0));
            }
            Instance { n, m, triples }
        })
}

fn matrix_of(inst: &Instance) -> RatingMatrix {
    RatingMatrix::from_triples(
        inst.n,
        inst.m,
        inst.triples.iter().copied(),
        RatingScale::one_to_five(),
    )
    .unwrap()
}

fn config(sem_lm: bool, agg_ix: usize, k: usize, ell: usize) -> FormationConfig {
    let sem = if sem_lm {
        Semantics::LeastMisery
    } else {
        Semantics::AggregateVoting
    };
    FormationConfig::new(sem, Aggregation::paper_set()[agg_ix], k, ell)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental `/rate` + background passes == cold rebuild: identical
    /// matrix, preference lists, grouping, objective and assignment.
    #[test]
    fn incremental_matches_cold_rebuild(
        inst in instance(9, 7),
        updates in proptest::collection::vec((0u32..9, 0u32..7, 1u8..=5), 1..16),
        (sem_lm, agg_ix) in (any::<bool>(), 0usize..3),
        (k, ell) in (1usize..4, 1usize..5),
        max_per_pass in 1usize..4,
    ) {
        let cfg = config(sem_lm, agg_ix, k, ell);
        let serve_cfg = ServeConfig::new(cfg)
            .with_batch_window(Duration::ZERO)
            .with_max_updates_per_pass(max_per_pass);
        let state = ServeState::new(matrix_of(&inst), serve_cfg.clone()).unwrap();
        for &(u, i, r) in &updates {
            state.rate(u % inst.n, i % inst.m, r as f64).unwrap();
        }
        state.flush().unwrap();
        let warm = state.snapshot();

        // Cold rebuild over the same final ratings.
        let mut finals: std::collections::HashMap<(u32, u32), f64> =
            inst.triples.iter().map(|&(u, i, s)| ((u, i), s)).collect();
        for &(u, i, r) in &updates {
            finals.insert((u % inst.n, i % inst.m), r as f64);
        }
        let cold_matrix = RatingMatrix::from_triples(
            inst.n,
            inst.m,
            finals.iter().map(|(&(u, i), &s)| (u, i, s)),
            RatingScale::one_to_five(),
        ).unwrap();
        let cold = ServeState::new(cold_matrix.clone(), serve_cfg).unwrap();
        let cold = cold.snapshot();

        prop_assert_eq!(warm.matrix.as_ref(), &cold_matrix);
        let cold_prefs = PrefIndex::build(&cold_matrix);
        for u in 0..inst.n {
            prop_assert_eq!(warm.prefs.ranked_items(u), cold_prefs.ranked_items(u));
            prop_assert_eq!(warm.prefs.ranked_scores(u), cold_prefs.ranked_scores(u));
        }
        prop_assert_eq!(&warm.default_grouping().formation, &cold.default_grouping().formation);
        prop_assert_eq!(&warm.default_grouping().assignment, &cold.default_grouping().assignment);
        warm.default_grouping().formation.grouping.validate(inst.n, ell).unwrap();
    }

    /// The registry-wide acceptance invariant: after ANY `/rate` batch
    /// sequence fanned out by the background passes, EVERY named grouping
    /// — least-misery, average, consensus and leader-weighted, each with
    /// its own (k, ell) — equals its own cold build over the same final
    /// ratings. One shared matrix, four independent formations, all exact.
    #[test]
    fn every_named_grouping_matches_its_own_cold_rebuild(
        inst in instance(9, 7),
        updates in proptest::collection::vec((0u32..9, 0u32..7, 1u8..=5), 1..14),
        lambda in 0.0f64..1.5,
        (k, ell) in (1usize..4, 1usize..5),
        max_per_pass in 1usize..4,
    ) {
        let registry = [
            ("av", FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, k, ell)),
            ("cons", FormationConfig::new(Semantics::Consensus { lambda }, Aggregation::Min, 2, 2)),
            ("ldr", FormationConfig::new(Semantics::LeaderWeighted, Aggregation::Max, 3, ell)),
        ];
        let mut serve_cfg = ServeConfig::new(config(true, 0, k, ell))
            .with_batch_window(Duration::ZERO)
            .with_max_updates_per_pass(max_per_pass);
        for (name, gc) in &registry {
            serve_cfg = serve_cfg.with_grouping(*name, *gc);
        }
        let state = ServeState::new(matrix_of(&inst), serve_cfg.clone()).unwrap();
        for &(u, i, r) in &updates {
            state.rate(u % inst.n, i % inst.m, r as f64).unwrap();
        }
        state.flush().unwrap();
        let warm = state.snapshot();

        // All groupings share the one matrix by pointer.
        for g in ["av", "cons", "ldr"] {
            prop_assert!(warm.grouping(g).is_some(), "grouping {} missing", g);
        }

        // Cold rebuild of the whole registry over the same final ratings.
        let mut finals: std::collections::HashMap<(u32, u32), f64> =
            inst.triples.iter().map(|&(u, i, s)| ((u, i), s)).collect();
        for &(u, i, r) in &updates {
            finals.insert((u % inst.n, i % inst.m), r as f64);
        }
        let cold_matrix = RatingMatrix::from_triples(
            inst.n,
            inst.m,
            finals.iter().map(|(&(u, i), &s)| (u, i, s)),
            RatingScale::one_to_five(),
        ).unwrap();
        let cold = ServeState::new(cold_matrix, serve_cfg).unwrap();
        let cold = cold.snapshot();

        for (name, _) in registry.iter().map(|(n, c)| (*n, c)).chain([("default", &registry[0].1)]) {
            let w = warm.grouping(name).unwrap();
            let c = cold.grouping(name).unwrap();
            prop_assert_eq!(&w.formation, &c.formation, "grouping {}", name);
            prop_assert_eq!(&w.assignment, &c.assignment, "grouping {}", name);
        }
    }

    /// Every pass is bounded and versions advance by exactly one per
    /// applied journal record — independent of pass chunking, the
    /// invariant durable crash replay relies on — ending with an empty
    /// journal.
    #[test]
    fn passes_are_bounded_and_versions_monotonic(
        inst in instance(6, 5),
        updates in proptest::collection::vec((0u32..6, 0u32..5, 1u8..=5), 1..12),
        max_per_pass in 1usize..3,
    ) {
        let cfg = config(true, 0, 2, 2);
        let state = ServeState::new(
            matrix_of(&inst),
            ServeConfig::new(cfg).with_max_updates_per_pass(max_per_pass),
        ).unwrap();
        for &(u, i, r) in &updates {
            state.rate(u % inst.n, i % inst.m, r as f64).unwrap();
        }
        let mut version = state.snapshot().version;
        loop {
            let applied = state.process_pending().unwrap();
            if applied == 0 {
                break;
            }
            prop_assert!(applied <= max_per_pass);
            let now = state.snapshot().version;
            prop_assert_eq!(now, version + applied as u64);
            version = now;
        }
        prop_assert_eq!(state.pending_len(), 0);
    }
}
