//! In-process durability tests: warm restarts, WAL-only recovery, torn
//! tails and former-lineage preservation — everything that doesn't need
//! a real process to die (for that, see `tests/crash.rs`).

use gf_core::{Aggregation, FormationConfig, GrowthPolicy, RatingMatrix, RatingScale, Semantics};
use gf_persist::checkpoint;
use gf_persist::wal::{SyncMode, Wal};
use gf_serve::persist::{boot, checkpoint_now, DurabilityOptions};
use gf_serve::{ServeConfig, ServeState};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gf-recovery-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_matrix() -> RatingMatrix {
    let rows: Vec<Vec<f64>> = (0..12)
        .map(|u| {
            (0..6)
                .map(|i| 1.0 + ((u * 7 + i * 3 + u * i) % 5) as f64)
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap()
}

fn grow_config() -> ServeConfig {
    ServeConfig::new(
        FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 3, 3).with_growth(
            GrowthPolicy::Grow {
                max_users: 32,
                max_items: 16,
            },
        ),
    )
    .with_batch_window(Duration::ZERO)
}

fn opts(dir: &Path) -> DurabilityOptions {
    let mut o = DurabilityOptions::new(dir);
    o.checkpoint_interval = Duration::ZERO; // tests checkpoint explicitly
    o
}

/// The updates every test session applies: overwrites, fresh cells, and
/// two admissions (user 14 and item 7 are beyond the 12x6 boot matrix).
const SCRIPT: [(u32, u32, f64); 10] = [
    (0, 0, 5.0),
    (3, 2, 1.0),
    (7, 5, 4.0),
    (14, 1, 3.0), // admits users 12..=14
    (2, 7, 2.0),  // admits items 6..=7
    (0, 0, 2.0),  // overwrite the overwrite
    (14, 7, 5.0),
    (9, 3, 3.0),
    (11, 0, 1.0),
    (5, 5, 5.0),
];

/// A volatile server fed the same updates — the "never crashed" oracle.
fn reference(updates: &[(u32, u32, f64)]) -> Arc<ServeState> {
    let state = ServeState::new(base_matrix(), grow_config()).unwrap();
    for &(u, i, s) in updates {
        state.rate(u, i, s).unwrap();
    }
    state.flush().unwrap();
    state
}

#[test]
fn warm_restart_is_bit_for_bit_identical() {
    let dir = tmpdir("warm");
    let o = opts(&dir);
    let (state, report) = boot(grow_config(), &o, || Ok(base_matrix())).unwrap();
    assert!(report.cold_start);
    for &(u, i, s) in &SCRIPT {
        state.rate(u, i, s).unwrap();
    }
    state.flush().unwrap();
    let digest_before = state.digest();
    let version_before = state.snapshot().version;
    drop(state); // crash: no shutdown, no final checkpoint

    let (restored, report) = boot(grow_config(), &o, || {
        panic!("warm boot must not reload the dataset")
    })
    .unwrap();
    assert!(!report.cold_start);
    assert_eq!(report.checkpoint_version, 1); // only the boot checkpoint existed
    assert_eq!(report.replayed, SCRIPT.len() as u64);
    assert_eq!(report.dropped_bytes, 0);
    assert_eq!(restored.snapshot().version, version_before);
    assert_eq!(restored.digest(), digest_before);
    // And both equal the server that never crashed.
    assert_eq!(restored.digest(), reference(&SCRIPT).digest());
    let snap = restored.snapshot();
    assert_eq!(snap.progress.users_admitted, 3);
    assert_eq!(snap.progress.items_admitted, 2);
    assert_eq!(snap.progress.applied, SCRIPT.len() as u64);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_only_recovery_replays_from_scratch() {
    let dir = tmpdir("walonly");
    // A journal with no checkpoint at all (e.g. the operator deleted
    // corrupt checkpoints, per the OPERATIONS.md playbook).
    let (mut wal, _) = Wal::open(&dir, SyncMode::Always).unwrap();
    for &(u, i, s) in &SCRIPT[..5] {
        wal.append(&[(u, i, s)]).unwrap();
    }
    drop(wal);

    let (state, report) = boot(grow_config(), &opts(&dir), || Ok(base_matrix())).unwrap();
    assert!(report.cold_start); // no checkpoint => the dataset closure ran
    assert_eq!(report.replayed, 5);
    assert_eq!(state.digest(), reference(&SCRIPT[..5]).digest());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_wal_tail_is_dropped_not_fatal() {
    let dir = tmpdir("torn");
    let o = opts(&dir);
    let (state, _) = boot(grow_config(), &o, || Ok(base_matrix())).unwrap();
    for &(u, i, s) in &SCRIPT[..3] {
        state.rate(u, i, s).unwrap();
    }
    state.flush().unwrap();
    drop(state);
    // Tear the last record (as a crash mid-append would).
    let segment = gf_persist::wal::scan(&dir)
        .unwrap()
        .records
        .last()
        .map(|_| ())
        .and_then(|_| {
            fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| {
                    let p = e.unwrap().path();
                    p.file_name()?.to_str()?.starts_with("wal-").then_some(p)
                })
                .max()
        })
        .unwrap();
    let bytes = fs::read(&segment).unwrap();
    fs::write(&segment, &bytes[..bytes.len() - 7]).unwrap();

    let (restored, report) = boot(grow_config(), &o, || {
        panic!("checkpoint exists; must stay warm")
    })
    .unwrap();
    assert!(report.dropped_bytes > 0);
    assert_eq!(report.replayed, 2); // record 3 was torn away
    assert_eq!(restored.digest(), reference(&SCRIPT[..2]).digest());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoints_restore_the_former_warm() {
    let dir = tmpdir("warmformer");
    let o = opts(&dir);
    let (state, _) = boot(grow_config(), &o, || Ok(base_matrix())).unwrap();
    for &(u, i, s) in &SCRIPT {
        state.rate(u, i, s).unwrap();
    }
    state.flush().unwrap(); // incremental passes leave a synced former
    assert!(
        state
            .stats
            .refresh_incremental
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0
    );
    assert!(checkpoint_now(&state, &o).unwrap().is_some());
    let loaded = checkpoint::load_latest(&dir).unwrap().loaded.unwrap().0;
    assert!(
        loaded.default_grouping().unwrap().former.is_some(),
        "a synced former must be exported into the checkpoint"
    );
    drop(state);

    // The restored server's next refresh rides the imported bucket state
    // (refresh_incremental counts it) and still matches the oracle.
    let (restored, _) = boot(grow_config(), &o, || unreachable!()).unwrap();
    restored.rate(1, 1, 4.0).unwrap();
    restored.flush().unwrap();
    assert_eq!(
        restored
            .stats
            .refresh_incremental
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    let mut script: Vec<(u32, u32, f64)> = SCRIPT.to_vec();
    script.push((1, 1, 4.0));
    assert_eq!(restored.digest(), reference(&script).digest());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn same_config_form_keeps_the_former_lineage() {
    let dir = tmpdir("formlineage");
    let o = opts(&dir);
    let (state, _) = boot(grow_config(), &o, || Ok(base_matrix())).unwrap();
    state.rate(0, 0, 5.0).unwrap();
    state.flush().unwrap(); // former initialized + synced
    let cfg = state.snapshot().default_grouping().config;

    // A same-config /form used to break the lineage; now it re-syncs, so
    // the standing former still exports into the next checkpoint...
    state.form(cfg).unwrap();
    assert!(checkpoint_now(&state, &o).unwrap().is_some());
    let ck = checkpoint::load_latest(&dir).unwrap().loaded.unwrap().0;
    assert!(
        ck.default_grouping().unwrap().former.is_some(),
        "same-config /form must keep the former warm"
    );

    // ...and a *different*-config /form still (correctly) severs it.
    let other = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 2, 4)
        .with_growth(cfg.growth);
    state.form(other).unwrap();
    assert!(checkpoint_now(&state, &o).unwrap().is_some());
    let ck = checkpoint::load_latest(&dir).unwrap().loaded.unwrap().0;
    assert!(ck.default_grouping().unwrap().former.is_none());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lost_wal_behind_a_checkpoint_restarts_the_log() {
    let dir = tmpdir("lostwal");
    let o = opts(&dir);
    let (state, _) = boot(grow_config(), &o, || Ok(base_matrix())).unwrap();
    for &(u, i, s) in &SCRIPT[..4] {
        state.rate(u, i, s).unwrap();
    }
    state.flush().unwrap();
    assert!(checkpoint_now(&state, &o).unwrap().is_some());
    drop(state);
    // Simulate operator error: the WAL vanishes, checkpoints survive.
    for entry in fs::read_dir(&dir).unwrap() {
        let p = entry.unwrap().path();
        if p.file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("wal-"))
        {
            fs::remove_file(p).unwrap();
        }
    }
    let (restored, report) = boot(grow_config(), &o, || unreachable!()).unwrap();
    assert!(!report.cold_start);
    assert_eq!(report.replayed, 0);
    // New appends must continue past the checkpoint frontier, never
    // reusing sequence numbers a future replay would consider baked.
    restored.rate(0, 1, 3.0).unwrap();
    restored.flush().unwrap();
    assert_eq!(restored.snapshot().progress.wal_seq, 5);
    let mut script: Vec<(u32, u32, f64)> = SCRIPT[..4].to_vec();
    script.push((0, 1, 3.0));
    assert_eq!(restored.digest(), reference(&script).digest());
    fs::remove_dir_all(&dir).unwrap();
}
