//! Quality-loop acceptance tests.
//!
//! Three contracts from three layers, checked end to end:
//!
//! 1. the allocation-reusing [`gf_core::CandidateEngine`] computes the
//!    same candidate sets as the obvious brute force, on random matrices
//!    and member sets (property);
//! 2. `GET /v1/recommend/...` with its default `exclude_rated=true`
//!    never returns an item any group member has rated, for any group of
//!    any grouping, on random instances and after rating churn
//!    (property);
//! 3. the online `quality` block in `/v1/stats` — fed by journaled
//!    `POST /v1/feedback` — equals what `gf-eval`'s *independent* offline
//!    holdout judge computes from the same events, assignment and served
//!    lists.

use gf_core::{
    brute_force_candidates, Aggregation, CandidateEngine, FormationConfig, RatingMatrix,
    RatingScale, Semantics,
};
use gf_eval::{evaluate_holdout, HoldoutEvent};
use gf_serve::http::route;
use gf_serve::{HttpRequest, Json, ServeConfig, ServeState};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// A random sparse rating instance on the 1..5 integer scale, at least
/// one rating (the serve layer rejects empty matrices).
#[derive(Debug, Clone)]
struct Instance {
    n: u32,
    m: u32,
    triples: Vec<(u32, u32, f64)>,
}

fn instance(max_users: u32, max_items: u32) -> impl Strategy<Value = Instance> {
    (2..=max_users, 2..=max_items)
        .prop_flat_map(|(n, m)| {
            let cell = (0..n, 0..m, 1..=5u8, any::<bool>());
            (
                Just(n),
                Just(m),
                proptest::collection::vec(cell, 1..(n as usize * m as usize).min(48)),
            )
        })
        .prop_map(|(n, m, cells)| {
            let mut seen = std::collections::HashSet::new();
            let mut triples = Vec::new();
            for (u, i, r, keep) in cells {
                if keep && seen.insert((u, i)) {
                    triples.push((u, i, r as f64));
                }
            }
            if triples.is_empty() {
                triples.push((0, 0, 3.0));
            }
            Instance { n, m, triples }
        })
}

fn matrix_of(inst: &Instance) -> RatingMatrix {
    RatingMatrix::from_triples(
        inst.n,
        inst.m,
        inst.triples.iter().copied(),
        RatingScale::one_to_five(),
    )
    .unwrap()
}

fn get(state: &ServeState, path: &str, query: &str) -> (u16, Json) {
    route(
        state,
        &HttpRequest {
            method: "GET".into(),
            path: path.into(),
            query: query.into(),
            body: String::new(),
            keep_alive: false,
        },
    )
}

fn post(state: &ServeState, path: &str, body: &str) -> (u16, Json) {
    route(
        state,
        &HttpRequest {
            method: "POST".into(),
            path: path.into(),
            query: String::new(),
            body: body.into(),
            keep_alive: false,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The serving candidate engine (epoch-marked scratch, reused across
    /// calls) agrees with the brute force on every random (matrix,
    /// member set) pair — including repeated calls on one engine, which
    /// is exactly how the serve cache drives it.
    #[test]
    fn candidate_engine_matches_brute_force(
        inst in instance(10, 8),
        member_picks in proptest::collection::vec(
            proptest::collection::vec(any::<u32>(), 0..6),
            1..5,
        ),
    ) {
        let matrix = matrix_of(&inst);
        let mut engine = CandidateEngine::new();
        for picks in &member_picks {
            let mut members: Vec<u32> =
                picks.iter().map(|&p| p % inst.n).collect();
            members.sort_unstable();
            members.dedup();
            let fast = engine.candidates_for_group(&matrix, &members).unwrap();
            let slow = brute_force_candidates(&matrix, &members).unwrap();
            prop_assert_eq!(fast, slow);
        }
    }

    /// `/v1/recommend` under the default `exclude_rated=true` never
    /// serves an item any member of the group has rated — for every
    /// group, on the boot formation and again after rating churn.
    #[test]
    fn v1_recommend_never_returns_member_rated_items(
        inst in instance(9, 7),
        updates in proptest::collection::vec((0u32..9, 0u32..7, 1u8..=5), 0..12),
        (k, ell) in (1usize..4, 1usize..5),
    ) {
        let cfg = ServeConfig::new(FormationConfig::new(
            Semantics::LeastMisery,
            Aggregation::Min,
            k,
            ell,
        ))
        .with_batch_window(Duration::ZERO);
        let state = ServeState::new(matrix_of(&inst), cfg).unwrap();
        assert_no_rated_items_served(&state);
        for &(u, i, r) in &updates {
            state.rate(u % inst.n, i % inst.m, r as f64).unwrap();
        }
        state.flush().unwrap();
        assert_no_rated_items_served(&state);
    }
}

fn assert_no_rated_items_served(state: &ServeState) {
    let snap = state.snapshot();
    let matrix = Arc::clone(&snap.matrix);
    for (name, grouping) in &snap.groupings {
        for (g, group) in grouping.formation.grouping.groups.iter().enumerate() {
            let (status, body) = get(state, &format!("/v1/recommend/{name}/{g}"), "");
            assert_eq!(status, 200, "{name}/{g}: {body}");
            assert_eq!(
                body.get("excluded_rated").and_then(Json::as_bool),
                Some(true)
            );
            let served: Vec<u32> = match body.get("top_k") {
                Some(Json::Arr(entries)) => entries
                    .iter()
                    .map(|e| e.get("item").and_then(Json::as_u64).unwrap() as u32)
                    .collect(),
                other => panic!("{name}/{g}: top_k missing: {other:?}"),
            };
            for &member in &group.members {
                for &item in &served {
                    assert!(
                        matrix.get(member, item).is_none(),
                        "group {g} of {name:?} was served item {item}, \
                         already rated by member {member}"
                    );
                }
            }
        }
    }
}

/// Replaying the exact `/v1/feedback` stream through `gf-eval`'s
/// independent offline judge reproduces the online `quality` numbers the
/// server reports — two implementations, one answer.
#[test]
fn online_quality_equals_offline_holdout() {
    // Sparse on purpose: items 3 and 4 are unrated by most users, so
    // candidate filtering and feedback hits both have room to differ
    // across groups.
    let matrix = RatingMatrix::from_triples(
        6,
        5,
        [
            (0u32, 0u32, 1.0),
            (0, 1, 4.0),
            (0, 2, 3.0),
            (0, 4, 2.0),
            (1, 0, 2.0),
            (1, 1, 3.0),
            (1, 2, 5.0),
            (1, 3, 1.0),
            (2, 0, 2.0),
            (2, 1, 5.0),
            (2, 2, 1.0),
            (2, 4, 4.0),
            (3, 0, 2.0),
            (3, 1, 5.0),
            (3, 2, 1.0),
            (3, 3, 3.0),
            (4, 0, 3.0),
            (4, 1, 1.0),
            (4, 2, 1.0),
            (4, 4, 5.0),
            (5, 0, 1.0),
            (5, 1, 2.0),
            (5, 2, 5.0),
            (5, 3, 4.0),
        ],
        RatingScale::one_to_five(),
    )
    .unwrap();
    let cfg = ServeConfig::new(FormationConfig::new(
        Semantics::LeastMisery,
        Aggregation::Min,
        3,
        2,
    ))
    .with_batch_window(Duration::ZERO);
    let state = ServeState::new(matrix, cfg).unwrap();
    let (status, _) = post(
        &state,
        "/v1/grouping",
        r#"{"name":"av","semantics":"av","aggregation":"sum"}"#,
    );
    assert_eq!(status, 200);

    // The feedback stream: a mix of hits, misses, duplicates, and one
    // event scoped to a single grouping.
    let stream: &[(u32, u32, Option<&str>)] = &[
        (0, 2, None),
        (1, 2, None),
        (2, 1, None),
        (2, 1, None),
        (3, 4, Some("av")),
        (4, 0, None),
        (5, 2, Some("default")),
    ];
    for &(user, item, scope) in stream {
        let body = match scope {
            Some(s) => format!(r#"{{"user":{user},"item":{item},"grouping":"{s}"}}"#),
            None => format!(r#"{{"user":{user},"item":{item}}}"#),
        };
        let (status, resp) = post(&state, "/v1/feedback", &body);
        assert_eq!(status, 202, "{resp}");
    }
    state.flush().unwrap();

    let (status, stats) = get(&state, "/v1/stats", "");
    assert_eq!(status, 200);
    let snap = state.snapshot();
    let events: Vec<HoldoutEvent> = stream
        .iter()
        .map(|&(user, item, scope)| HoldoutEvent {
            user,
            item,
            scope: scope.map(str::to_string),
        })
        .collect();
    for (name, grouping) in &snap.groupings {
        let served: Vec<Vec<u32>> = grouping
            .formation
            .grouping
            .groups
            .iter()
            .map(|g| g.top_k.iter().map(|&(item, _)| item).collect())
            .collect();
        let offline = evaluate_holdout(
            name,
            &events,
            &grouping.assignment,
            &served,
            grouping.config.k,
        );
        let online = stats
            .get("quality")
            .and_then(|q| q.get(name))
            .unwrap_or_else(|| panic!("/v1/stats quality block missing {name:?}"));
        let num = |key: &str| {
            online
                .get(key)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("quality.{name}.{key} missing"))
        };
        assert_eq!(num("window_events") as usize, offline.events_attributed);
        assert_eq!(num("groups_evaluated") as usize, offline.groups_evaluated);
        assert!(offline.groups_evaluated > 0, "{name}: no evidence landed");
        assert!(
            (num("precision") - offline.precision).abs() < 1e-12,
            "{name}"
        );
        assert!((num("recall") - offline.recall).abs() < 1e-12, "{name}");
        assert!((num("ndcg") - offline.ndcg).abs() < 1e-12, "{name}");
    }
}
