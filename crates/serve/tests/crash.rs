//! Crash-injection proof harness: `kill -9` a **real** `gf-serve`
//! process mid-run, restart it on the same `--data-dir`, and assert the
//! recovered state is bit-for-bit the state of a server that never
//! crashed — digest, snapshot version, applied-record count and
//! admission counters all equal.
//!
//! The uninterrupted reference is rebuilt in-process by replaying the
//! full retained WAL (`--wal-retain`) from sequence 1 into a fresh
//! [`ServeState`]: an acked rating is durable (`--wal-sync always`), so
//! the journal *is* the uninterrupted run. Equality then proves
//! checkpoint + tail-replay ≡ pure sequential application.
//!
//! Three kill points: before any checkpoint exists (WAL-only recovery),
//! between rapid periodic checkpoints (checkpoint + tail), and a
//! double-crash immediately after a recovery (recover-from-recovery).
//! None of them use `--max-swaps`: exact version equality is guaranteed
//! under the default unbounded repair budget only (capped servers run
//! catch-up passes that advance the version without journal records).
//!
//! Every server runs a three-entry grouping registry — `default`
//! (least-misery), `av` (average) and `cons` (consensus) — over the one
//! shared matrix, and recovery is asserted per grouping: the `/digest`
//! grouping map of the restarted process must equal the uninterrupted
//! reference name-for-name, bit-for-bit.
//!
//! The update stream interleaves `POST /v1/feedback` with ratings, so the
//! same equality also proves the quality ledger survives: the state
//! digest folds in the feedback window, and `feedback_applied` on the
//! restarted server must equal the journal's feedback-record count.

use gf_core::{Aggregation, FormationConfig, GrowthPolicy, RefreshMode, Semantics};
use gf_datasets::SynthConfig;
use gf_serve::{Json, ServeConfig, ServeState};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const USERS: u32 = 48;
const ITEMS: u32 = 10;
const MAX_USERS: u32 = 64;
const MAX_ITEMS: u32 = 32;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gf-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A running `gf-serve` child; SIGKILLed on drop so a failing assert
/// never leaks a process.
struct Server {
    child: Child,
    addr: String,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Server {
    /// `Child::kill` delivers SIGKILL on unix — the real crash, no
    /// destructors, no flushes.
    fn kill_dash_nine(mut self) {
        self.child.kill().unwrap();
        self.child.wait().unwrap();
    }
}

fn spawn(dir: &Path, checkpoint_interval_ms: u64) -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_gf-serve"))
        .args([
            "--addr",
            "127.0.0.1",
            "--port",
            "0",
            "--synth",
            &format!("{USERS}x{ITEMS}"),
            "--max-users",
            &MAX_USERS.to_string(),
            "--max-items",
            &MAX_ITEMS.to_string(),
            "--batch-window-ms",
            "0",
            "--data-dir",
            dir.to_str().unwrap(),
            "--wal-sync",
            "always",
            "--wal-retain",
            "--checkpoint-interval-ms",
            &checkpoint_interval_ms.to_string(),
            "--grouping",
            "av:semantics=av,agg=sum",
            "--grouping",
            "cons:semantics=cons,lambda=0.5",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    let addr = loop {
        line.clear();
        let n = stdout.read_line(&mut line).unwrap();
        assert!(n > 0, "gf-serve exited before printing the listening line");
        if let Some(rest) = line.split("listening on http://").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address after http://")
                .to_string();
        }
    };
    Server { child, addr }
}

/// One short-lived HTTP/1.1 request; returns (status, body).
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\
                 content-length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    (status, body.to_string())
}

fn rate(addr: &str, user: u32, item: u32, score: u32) {
    let (status, body) = http(
        addr,
        "POST",
        "/rate",
        &format!(r#"{{"user":{user},"item":{item},"rating":{score}}}"#),
    );
    assert_eq!(status, 202, "rate ({user},{item},{score}) refused: {body}");
}

fn feedback(addr: &str, user: u32, item: u32, scope: Option<&str>) {
    let body = match scope {
        Some(s) => format!(r#"{{"user":{user},"item":{item},"grouping":"{s}"}}"#),
        None => format!(r#"{{"user":{user},"item":{item}}}"#),
    };
    let (status, resp) = http(addr, "POST", "/v1/feedback", &body);
    assert_eq!(status, 202, "feedback ({user},{item}) refused: {resp}");
}

/// Drives a slice of the rating script against a live server,
/// interleaving a deterministic trickle of `/v1/feedback` posts (base
/// users/items only, so feedback validation never races a pending
/// admission). Returns the number of journal records produced — one per
/// rating plus one per feedback. `sleep_every > 0` naps briefly every
/// that-many ratings so a rapid checkpointer can land mid-stream.
fn drive(addr: &str, updates: &[(u32, u32, u32)], offset: usize, sleep_every: usize) -> u64 {
    let mut records = 0u64;
    for (n, &(u, i, s)) in updates.iter().enumerate() {
        rate(addr, u, i, s);
        records += 1;
        let k = offset + n;
        if k % 5 == 2 {
            let scope = match k % 3 {
                0 => Some("cons"),
                1 => Some("av"),
                _ => None,
            };
            feedback(addr, u % USERS, i % ITEMS, scope);
            records += 1;
        }
        if sleep_every > 0 && n % sleep_every == sleep_every - 1 {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    records
}

/// Deterministic rating stream: mostly in-population updates, a steady
/// trickle of admissions (users 48..64, items 10..32), scores on the
/// synth corpus's 1–5 integer grid.
fn script(n: usize) -> Vec<(u32, u32, u32)> {
    let mut x: u64 = 0x243F_6A88_85A3_08D3;
    (0..n)
        .map(|k| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let user = if k % 7 == 3 {
                USERS + ((x >> 33) % (MAX_USERS - USERS) as u64) as u32
            } else {
                ((x >> 33) % USERS as u64) as u32
            };
            let item = if k % 11 == 5 {
                ITEMS + ((x >> 13) % (MAX_ITEMS - ITEMS) as u64) as u32
            } else {
                ((x >> 13) % ITEMS as u64) as u32
            };
            (user, item, 1 + ((x >> 3) % 5) as u32)
        })
        .collect()
}

/// `/digest` fields of a live server, including the per-grouping map.
struct Digest {
    digest: String,
    version: u64,
    applied: u64,
    users_admitted: u64,
    items_admitted: u64,
    /// Sorted `(grouping name, 16-hex-digit digest)` pairs.
    groupings: Vec<(String, String)>,
}

fn digest_of(addr: &str) -> Digest {
    let (status, body) = http(addr, "GET", "/digest", "");
    assert_eq!(status, 200, "{body}");
    let json = Json::parse(&body).unwrap();
    let num = |k: &str| json.get(k).and_then(Json::as_u64).unwrap();
    let mut groupings: Vec<(String, String)> = match json.get("groupings") {
        Some(Json::Obj(fields)) => fields
            .iter()
            .map(|(name, d)| (name.clone(), d.as_str().unwrap().to_string()))
            .collect(),
        other => panic!("/digest groupings map missing or not an object: {other:?}"),
    };
    groupings.sort();
    Digest {
        digest: json
            .get("digest")
            .and_then(Json::as_str)
            .unwrap()
            .to_string(),
        version: num("version"),
        applied: num("applied"),
        users_admitted: num("users_admitted"),
        items_admitted: num("items_admitted"),
        groupings,
    }
}

/// The uninterrupted run: a fresh in-process server over the same synth
/// corpus and config, fed the retained journal from sequence 1.
fn reference(dir: &Path) -> Digest {
    let scanned = gf_persist::wal::scan(dir).unwrap();
    assert!(!scanned.records.is_empty(), "harness journaled nothing");
    let matrix = SynthConfig::yahoo_music()
        .with_users(USERS)
        .with_items(ITEMS)
        .generate()
        .matrix;
    // Mirrors the flags `spawn` passes (and the binary's defaults),
    // including its three-entry grouping registry.
    let formation = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 5, 10)
        .with_threads(0)
        .with_refresh(RefreshMode::Auto)
        .with_growth(GrowthPolicy::Grow {
            max_users: MAX_USERS,
            max_items: MAX_ITEMS,
        });
    let mut av = formation;
    av.semantics = Semantics::AggregateVoting;
    av.aggregation = Aggregation::Sum;
    let mut cons = formation;
    cons.semantics = Semantics::Consensus { lambda: 0.5 };
    let state = ServeState::new(
        matrix,
        ServeConfig::new(formation)
            .with_grouping("av", av)
            .with_grouping("cons", cons)
            .with_batch_window(Duration::ZERO),
    )
    .unwrap();
    for rec in &scanned.records {
        match &rec.payload {
            gf_persist::WalPayload::Ratings(updates) => {
                assert_eq!(
                    updates.len(),
                    1,
                    "live servers journal one update per record"
                );
                let (u, i, s) = updates[0];
                state.rate(u, i, s).unwrap();
            }
            gf_persist::WalPayload::Feedback { user, item, scope } => {
                state.feedback(*user, *item, scope.as_deref()).unwrap();
            }
        }
    }
    state.flush().unwrap();
    let snap = state.snapshot();
    let groupings = snap
        .groupings
        .keys()
        .map(|name| {
            let d = state.grouping_digest(name).unwrap();
            (name.clone(), format!("{d:016x}"))
        })
        .collect();
    Digest {
        digest: format!("{:016x}", state.digest()),
        version: snap.version,
        applied: snap.progress.applied,
        users_admitted: snap.progress.users_admitted,
        items_admitted: snap.progress.items_admitted,
        groupings,
    }
}

fn assert_recovered_equals_reference(addr: &str, dir: &Path) {
    let got = digest_of(addr);
    let want = reference(dir);
    assert_eq!(got.version, want.version, "snapshot version diverged");
    assert_eq!(got.applied, want.applied, "applied-record count diverged");
    assert_eq!(got.users_admitted, want.users_admitted);
    assert_eq!(got.items_admitted, want.items_admitted);
    assert!(
        got.groupings.len() >= 3,
        "the registry lost groupings: {:?}",
        got.groupings
    );
    assert_eq!(
        got.groupings, want.groupings,
        "per-grouping digests diverged"
    );
    assert_eq!(got.digest, want.digest, "state digest diverged");
    // The quality ledger must survive too: every journaled feedback
    // record counts as applied on the recovered server (checkpointed
    // window observations plus replayed tail).
    let n_feedback = gf_persist::wal::scan(dir)
        .unwrap()
        .records
        .iter()
        .filter(|r| matches!(r.payload, gf_persist::WalPayload::Feedback { .. }))
        .count() as u64;
    assert!(n_feedback > 0, "harness journaled no feedback");
    assert_eq!(
        stat(addr, "feedback_applied"),
        n_feedback,
        "feedback ledger diverged across the crash"
    );
}

fn stat(addr: &str, key: &str) -> u64 {
    let (status, body) = http(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    Json::parse(&body)
        .unwrap()
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("/stats missing {key}"))
}

/// Kill point 1: before any periodic checkpoint — recovery is the boot
/// checkpoint plus a full WAL-tail replay.
#[test]
fn kill_before_first_checkpoint() {
    let dir = tmpdir("early");
    let server = spawn(&dir, 3_600_000);
    let records = drive(&server.addr, &script(40), 0, 0);
    server.kill_dash_nine();

    let restarted = spawn(&dir, 3_600_000);
    assert_eq!(
        stat(&restarted.addr, "recovery_replayed"),
        records,
        "every acked record must replay"
    );
    assert_recovered_equals_reference(&restarted.addr, &dir);
    drop(restarted);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Kill point 2: mid-run with a rapid checkpointer racing the update
/// stream (and its admissions) — recovery is checkpoint + short tail.
#[test]
fn kill_between_checkpoints() {
    let dir = tmpdir("mid");
    let server = spawn(&dir, 25);
    // sleep_every gives the checkpointer room to land mid-stream.
    drive(&server.addr, &script(120), 0, 10);
    server.kill_dash_nine();

    let restarted = spawn(&dir, 3_600_000);
    assert_recovered_equals_reference(&restarted.addr, &dir);
    drop(restarted);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Kill point 3: crash, recover, keep serving, crash again immediately —
/// the second recovery stacks on the first one's boot checkpoint.
#[test]
fn kill_again_right_after_recovery() {
    let dir = tmpdir("double");
    let server = spawn(&dir, 3_600_000);
    drive(&server.addr, &script(30), 0, 0);
    server.kill_dash_nine();

    let survivor = spawn(&dir, 3_600_000);
    let second_records = drive(&survivor.addr, &script(45)[30..], 30, 0);
    survivor.kill_dash_nine();

    let restarted = spawn(&dir, 3_600_000);
    assert_eq!(
        stat(&restarted.addr, "recovery_replayed"),
        second_records,
        "only records past the survivor's boot checkpoint replay"
    );
    assert_recovered_equals_reference(&restarted.addr, &dir);
    drop(restarted);
    std::fs::remove_dir_all(&dir).unwrap();
}
