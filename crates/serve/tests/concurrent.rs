//! Concurrency tests: many reader threads querying `/group` and
//! `/recommend` through the real routing layer while `/rate` updates
//! stream in and the background worker swaps snapshots underneath them.

use gf_core::{Aggregation, FormationConfig, RatingMatrix, RatingScale, Semantics};
use gf_serve::http::route;
use gf_serve::{HttpRequest, Json, ServeConfig, ServeState};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn dense_matrix(n: u32, m: u32) -> RatingMatrix {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|u| {
            (0..m)
                .map(|i| 1.0 + ((u * 11 + i * 7 + u * i) % 5) as f64)
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap()
}

fn get(state: &ServeState, path: &str) -> (u16, Json) {
    route(
        state,
        &HttpRequest {
            method: "GET".into(),
            path: path.into(),
            query: String::new(),
            body: String::new(),
            keep_alive: true,
        },
    )
}

/// 6 reader threads hammer lookups while a writer streams 200 rating
/// updates through the background worker. Every reader response must be
/// internally consistent (the user is in the returned member list, the
/// group id is valid) and reader-observed versions must never go
/// backwards.
#[test]
fn readers_stay_consistent_under_rating_stream() {
    const N_USERS: u32 = 40;
    const N_READERS: usize = 6;
    const N_UPDATES: u32 = 200;

    let cfg = ServeConfig::new(
        FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 3, 5).with_threads(2),
    )
    .with_max_updates_per_pass(16);
    let state = ServeState::new(dense_matrix(N_USERS, 8), cfg).unwrap();
    let worker = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || state.run_refresh_worker())
    };
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..N_READERS)
        .map(|r| {
            let state = Arc::clone(&state);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut last_version = 0u64;
                let mut lookups = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let u = (lookups * 7 + r as u64) % N_USERS as u64;
                    let (status, body) = get(&state, &format!("/group/{u}"));
                    assert_eq!(status, 200, "reader {r} user {u}");
                    let members = body.get("members").and_then(Json::as_arr).unwrap();
                    assert!(
                        members.iter().any(|m| m.as_u64() == Some(u)),
                        "reader {r}: user {u} missing from its own group"
                    );
                    let version = body.get("version").and_then(Json::as_u64).unwrap();
                    assert!(
                        version >= last_version,
                        "reader {r}: version went backwards ({last_version} -> {version})"
                    );
                    last_version = version;
                    let gi = body.get("group").and_then(Json::as_u64).unwrap();
                    let (rs, rbody) = get(&state, &format!("/recommend/{gi}"));
                    // The group may have been re-formed between the two
                    // reads; the id must either resolve or 404, never
                    // panic or return malformed data.
                    if rs == 200 {
                        assert!(rbody.get("top_k").and_then(Json::as_arr).is_some());
                    }
                    lookups += 1;
                }
                lookups
            })
        })
        .collect();

    for i in 0..N_UPDATES {
        let (u, it, r) = (i % N_USERS, (i / 3) % 8, 1.0 + (i % 5) as f64);
        state.rate(u, it, r).unwrap();
        if i % 16 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    // Let the worker drain, then stop the readers.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while state.pending_len() > 0 {
        assert!(std::time::Instant::now() < deadline, "worker never drained");
        std::thread::sleep(Duration::from_millis(2));
    }
    done.store(true, Ordering::Relaxed);
    for reader in readers {
        assert!(reader.join().unwrap() > 0, "a reader made no progress");
    }
    state.shutdown();
    worker.join().unwrap();

    // After the dust settles the snapshot matches a synchronous flush.
    state.flush().unwrap();
    let snap = state.snapshot();
    snap.default_grouping()
        .formation
        .grouping
        .validate(N_USERS, 5)
        .unwrap();
    assert_eq!(
        state.stats.rates_applied.load(Ordering::Relaxed),
        N_UPDATES as u64
    );
}

/// Concurrent same-config `/form` requests coalesce: with a generous
/// window, 8 threads submitting the identical configuration trigger far
/// fewer actual formation runs than requests.
#[test]
fn concurrent_forms_coalesce() {
    let cfg = ServeConfig::new(FormationConfig::new(
        Semantics::AggregateVoting,
        Aggregation::Sum,
        3,
        4,
    ))
    .with_batch_window(Duration::from_millis(50));
    let state = ServeState::new(dense_matrix(30, 6), cfg).unwrap();
    let form_cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 2, 3);

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let state = Arc::clone(&state);
            std::thread::spawn(move || state.form(form_cfg).unwrap())
        })
        .collect();
    let outcomes: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    let leaders = outcomes.iter().filter(|o| o.leader).count();
    let runs = state.stats.form_runs.load(Ordering::Relaxed);
    assert_eq!(leaders as u64, runs);
    assert!(runs < 8, "no coalescing happened at all ({runs} runs)");
    assert!(outcomes.iter().any(|o| o.batch_size > 1));
    // Every member of a batch got the same installed snapshot version.
    let versions: std::collections::HashSet<u64> =
        outcomes.iter().map(|o| o.snapshot.version).collect();
    assert_eq!(versions.len(), runs as usize);
    // Different-config requests never coalesce with the batch.
    let other = state
        .form(FormationConfig::new(
            Semantics::LeastMisery,
            Aggregation::Min,
            2,
            3,
        ))
        .unwrap();
    assert!(other.leader);
}
