//! Standalone connection-sweep driver against a *running* `gf-serve`:
//!
//! ```text
//! gf-serve --synth 500x60 --port 8080 &
//! cargo run --release -p gf-serve --example conn_sweep -- 127.0.0.1:8080 100 1000 10000
//! ```
//!
//! Each positional argument after the address is one sweep point
//! (persistent keep-alive connections); with none given the default
//! 100 → 1000 → 10000 ladder runs. Points are clamped to this process's
//! fd budget. Prints one `conns=… p50=…us p99=…us rps=…` line per point
//! — the format EXPERIMENTS.md quotes.

use gf_serve::loadgen::{fd_budget, run_sweep, SweepConfig};
use std::net::SocketAddr;

fn main() {
    let mut args = std::env::args().skip(1);
    let addr: SocketAddr = args
        .next()
        .unwrap_or_else(|| usage())
        .parse()
        .unwrap_or_else(|_| usage());
    let mut points: Vec<usize> = args
        .map(|a| a.parse().unwrap_or_else(|_| usage()))
        .collect();
    if points.is_empty() {
        points = vec![100, 1_000, 10_000];
    }
    let budget = fd_budget().saturating_sub(256);
    for conns in points {
        let conns = conns.clamp(1, budget);
        let cfg = SweepConfig {
            connections: conns,
            // Keep total traffic roughly flat across the ladder.
            requests_per_conn: (20_000 / conns).clamp(3, 100),
            threads: 0,
            users: 500,
            items: 60,
        };
        match run_sweep(addr, &cfg) {
            Ok(report) => println!("{}", report.summary()),
            Err(err) => {
                eprintln!("sweep at {conns} connections failed: {err}");
                std::process::exit(1);
            }
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: conn_sweep ADDR:PORT [CONNS...]");
    std::process::exit(2);
}
