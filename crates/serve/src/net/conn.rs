//! Per-connection state machine shared by both transports.
//!
//! A [`Conn`] owns the two byte buffers of one TCP connection and all of
//! the protocol policy — pipelined request parsing, response encoding,
//! keep-alive/close decisions, the error envelopes for malformed and
//! oversized input, and write-side backpressure. Transports only move
//! bytes: they [`ingest`](Conn::ingest) what the socket produced, call
//! [`step`](Conn::step) until it reports [`Step::Idle`], flush
//! [`pending_write`](Conn::pending_write), and close when
//! [`done`](Conn::done). Because every protocol decision lives here,
//! the blocking fallback and the epoll loop cannot drift apart.
//!
//! Buffers are reused across requests on the same connection: both are
//! logically drained by advancing offsets and physically compacted only
//! when empty (or when the parsed prefix grows past a threshold), so a
//! busy keep-alive connection settles into zero-allocation steady state.

use crate::http::{error_body, route_full, status_text, HttpRequest, RouteOutcome};
use crate::json::Json;
use crate::net::parser::{parse_request, ParseError, ParseStep};
use crate::state::ServeState;

/// Write-side backpressure: once this many bytes are queued unflushed,
/// [`Conn::step`] stops parsing further pipelined requests (and the
/// epoll transport drops `EPOLLIN` interest) until the peer drains the
/// socket. Bounds per-connection memory against a client that pipelines
/// requests but never reads responses.
pub(crate) const HIGH_WATER: usize = 64 * 1024;

/// Read-buffer compaction threshold: the parsed prefix is shifted out
/// once it exceeds this, keeping the buffer small without memmoving
/// after every request.
const COMPACT_AT: usize = 16 * 1024;

/// What one [`Conn::step`] call did.
#[derive(Debug)]
pub(crate) enum Step {
    /// A response (or error envelope) was appended to the write buffer;
    /// step again — more pipelined requests may be buffered.
    Responded,
    /// Nothing to do until more bytes, drained writes, or an offload
    /// completion arrive.
    Idle,
    /// A slow route must run off-loop (epoll transport only). The
    /// connection is now paused: no further requests are parsed until
    /// [`Conn::complete_offload`] delivers the outcome, which preserves
    /// pipelined response order.
    Offload(HttpRequest),
}

/// One connection's buffers and protocol state.
#[derive(Debug)]
pub(crate) struct Conn {
    rbuf: Vec<u8>,
    /// Bytes of `rbuf` already consumed by the parser.
    rpos: usize,
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written to the socket.
    wpos: usize,
    /// An offloaded request is in flight; parsing is suspended.
    paused: bool,
    /// Stop after the write buffer drains (explicit close, protocol
    /// error, or EOF with no parseable request left).
    close_after_flush: bool,
    /// The peer half-closed its write side; no more bytes will arrive.
    saw_eof: bool,
    /// `keep_alive` of the request currently offloaded.
    offload_keep_alive: bool,
    /// Whether slow routes are routed through [`Step::Offload`] (epoll)
    /// or handled inline (blocking, where the thread may sleep).
    offload_slow: bool,
}

/// Batch-triggering routes sleep out the batching window inside the
/// handler — milliseconds of wall-clock the epoll loop cannot afford.
fn is_slow_route(req: &HttpRequest) -> bool {
    if req.method != "POST" {
        return false;
    }
    let path = match req.path.strip_prefix("/v1") {
        Some(rest) if rest.starts_with('/') => rest,
        _ => req.path.as_str(),
    };
    path == "/form" || path == "/grouping"
}

impl Conn {
    pub(crate) fn new(offload_slow: bool) -> Conn {
        Conn {
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            paused: false,
            close_after_flush: false,
            saw_eof: false,
            offload_keep_alive: false,
            offload_slow,
        }
    }

    /// Appends bytes read off the socket.
    pub(crate) fn ingest(&mut self, bytes: &[u8]) {
        self.rbuf.extend_from_slice(bytes);
    }

    /// Records that the peer will send no more bytes. Requests already
    /// buffered are still answered; a trailing partial request is
    /// silently dropped, exactly like the blocking reader did.
    pub(crate) fn mark_eof(&mut self) {
        self.saw_eof = true;
    }

    /// Unflushed response bytes.
    pub(crate) fn pending_write(&self) -> &[u8] {
        &self.wbuf[self.wpos..]
    }

    pub(crate) fn has_pending_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Marks `n` bytes of [`pending_write`](Conn::pending_write) as
    /// written; reclaims the buffer (keeping capacity) once empty.
    pub(crate) fn consume_written(&mut self, n: usize) {
        self.wpos += n;
        debug_assert!(self.wpos <= self.wbuf.len());
        if self.wpos >= self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
    }

    /// The connection is finished: everything owed has been flushed and
    /// no further request will be accepted.
    pub(crate) fn done(&self) -> bool {
        self.close_after_flush && !self.paused && !self.has_pending_write()
    }

    /// Whether the transport should keep watching for readable bytes.
    /// False while an offload is in flight (responses must stay in
    /// order), after a close decision, and under write backpressure.
    pub(crate) fn wants_read(&self) -> bool {
        !self.paused
            && !self.close_after_flush
            && !self.saw_eof
            && self.pending_write().len() < HIGH_WATER
    }

    /// Parses and answers at most one buffered request.
    pub(crate) fn step(&mut self, state: &ServeState) -> Step {
        if self.paused || self.close_after_flush {
            return Step::Idle;
        }
        if self.pending_write().len() >= HIGH_WATER {
            return Step::Idle; // backpressure: let the peer drain first
        }
        match parse_request(&self.rbuf[self.rpos..]) {
            Ok(ParseStep::Incomplete) => {
                if self.saw_eof {
                    // EOF between requests: clean close. EOF mid-request:
                    // the truncated tail is dropped, never dispatched.
                    self.close_after_flush = true;
                }
                Step::Idle
            }
            Ok(ParseStep::Request(req, used)) => {
                self.consume_parsed(used);
                if self.offload_slow && is_slow_route(&req) {
                    self.paused = true;
                    self.offload_keep_alive = req.keep_alive;
                    Step::Offload(req)
                } else {
                    let keep_alive = req.keep_alive;
                    let out = route_full(state, &req);
                    self.finish_request(keep_alive, &out);
                    Step::Responded
                }
            }
            Err(ParseError::Malformed(message)) => {
                self.respond_error(400, "bad_request", &message);
                Step::Responded
            }
            Err(ParseError::TooLarge(message)) => {
                self.respond_error(413, "payload_too_large", &message);
                Step::Responded
            }
        }
    }

    /// Delivers the outcome of an offloaded request and resumes parsing.
    pub(crate) fn complete_offload(&mut self, out: &RouteOutcome) {
        debug_assert!(self.paused);
        self.paused = false;
        let keep_alive = self.offload_keep_alive;
        self.finish_request(keep_alive, out);
    }

    fn finish_request(&mut self, keep_alive: bool, out: &RouteOutcome) {
        let keep = keep_alive && out.status < 500;
        self.encode_response(out.status, &out.body, keep, out.deprecated);
        if !keep {
            self.close_after_flush = true;
        }
    }

    fn respond_error(&mut self, status: u16, code: &'static str, message: &str) {
        let body = error_body(code, message);
        self.encode_response(status, &body, false, false);
        self.close_after_flush = true;
        // Whatever follows the rejected prefix is untrusted; drop it.
        self.rbuf.clear();
        self.rpos = 0;
    }

    fn consume_parsed(&mut self, used: usize) {
        self.rpos += used;
        debug_assert!(self.rpos <= self.rbuf.len());
        if self.rpos >= self.rbuf.len() {
            self.rbuf.clear();
            self.rpos = 0;
        } else if self.rpos >= COMPACT_AT {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
    }

    /// Serializes one response into the write buffer — same wire format
    /// the blocking `write_response` produced, byte for byte.
    fn encode_response(&mut self, status: u16, body: &Json, keep_alive: bool, deprecated: bool) {
        let payload = body.to_string();
        let head = format!(
            "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n{}\r\n",
            status_text(status),
            payload.len(),
            if keep_alive { "keep-alive" } else { "close" },
            if deprecated { "deprecation: true\r\n" } else { "" },
        );
        self.wbuf.extend_from_slice(head.as_bytes());
        self.wbuf.extend_from_slice(payload.as_bytes());
    }
}
