//! Portable blocking transport: thread-per-connection on `std::net`,
//! hardened with socket deadlines and a concurrency cap.
//!
//! This is the fallback for platforms without epoll (and an always-on
//! escape hatch via `--net blocking`). Two historical bugs are fixed
//! here rather than inherited:
//!
//! * **Slowloris**: accepted streams get `set_read_timeout` /
//!   `set_write_timeout` (`--conn-timeout-ms`, default 30s), so an idle
//!   or byte-at-a-time client releases its thread at the deadline
//!   instead of pinning it forever.
//! * **Unbounded spawn**: a [`Gate`] caps concurrent handler threads
//!   (`--max-conn-threads`). At the cap the acceptor stops calling
//!   `accept`, so a connection flood queues in the kernel backlog and
//!   degrades gracefully instead of exhausting process threads.

use crate::net::conn::{Conn, Step};
use crate::state::ServeState;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Counting semaphore bounding concurrent connection threads. Built on
/// `Mutex<usize>` + `Condvar` (no std semaphore on our MSRV); waiters
/// poll the stop flag so shutdown never deadlocks a full gate.
pub(crate) struct Gate {
    active: Mutex<usize>,
    freed: Condvar,
    cap: usize,
}

impl Gate {
    pub(crate) fn new(cap: usize) -> Gate {
        Gate {
            active: Mutex::new(0),
            freed: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Blocks until a slot frees up; `false` means the server stopped
    /// while waiting.
    fn acquire(&self, stop: &AtomicBool) -> bool {
        let mut active = self.active.lock().unwrap();
        loop {
            if stop.load(Ordering::SeqCst) {
                return false;
            }
            if *active < self.cap {
                *active += 1;
                return true;
            }
            let (guard, _) = self
                .freed
                .wait_timeout(active, Duration::from_millis(100))
                .unwrap();
            active = guard;
        }
    }

    fn release(&self) {
        *self.active.lock().unwrap() -= 1;
        self.freed.notify_one();
    }
}

/// The accept loop. Acquires a gate slot *before* accepting, so the cap
/// is backpressure on the kernel backlog, not a post-accept drop.
pub(crate) fn run_accept_loop(
    listener: TcpListener,
    state: Arc<ServeState>,
    conn_timeout: Option<Duration>,
    gate: Arc<Gate>,
    stop: Arc<AtomicBool>,
) {
    loop {
        if !gate.acquire(&stop) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(err) => {
                gate.release();
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                eprintln!("gf-serve: accept error: {err}");
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            gate.release();
            return;
        }
        state.stats.conns_accepted.fetch_add(1, Ordering::Relaxed);
        let state = Arc::clone(&state);
        let gate_for_conn = Arc::clone(&gate);
        std::thread::spawn(move || {
            serve_conn(stream, &state, conn_timeout);
            gate_for_conn.release();
        });
    }
}

fn is_timeout(err: &std::io::Error) -> bool {
    matches!(
        err.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Serves one connection until close, error, or deadline. All protocol
/// policy lives in [`Conn`]; this loop only moves bytes.
pub(crate) fn serve_conn(mut stream: TcpStream, state: &ServeState, timeout: Option<Duration>) {
    let _ = stream.set_read_timeout(timeout);
    let _ = stream.set_write_timeout(timeout);
    let _ = stream.set_nodelay(true);
    let mut conn = Conn::new(false);
    let mut buf = [0u8; 16 * 1024];
    loop {
        // Answer everything parseable, flushing whenever backpressure
        // pauses the parser.
        loop {
            match conn.step(state) {
                Step::Responded => continue,
                Step::Offload(_) => unreachable!("blocking transport handles slow routes inline"),
                Step::Idle => {
                    if !conn.has_pending_write() {
                        break;
                    }
                    while conn.has_pending_write() {
                        match stream.write(conn.pending_write()) {
                            Ok(0) => return,
                            Ok(n) => conn.consume_written(n),
                            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
                            Err(err) if is_timeout(&err) => {
                                state.stats.conns_timed_out.fetch_add(1, Ordering::Relaxed);
                                return;
                            }
                            Err(_) => return,
                        }
                    }
                }
            }
        }
        if conn.done() {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => conn.mark_eof(),
            Ok(n) => conn.ingest(&buf[..n]),
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
            Err(err) if is_timeout(&err) => {
                state.stats.conns_timed_out.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(_) => return,
        }
    }
}
