//! Incremental HTTP/1.1 request parser shared by both transports.
//!
//! The blocking transport used to parse straight off a `BufReader`; an
//! event loop cannot block, so parsing is restated as a *push* parser:
//! bytes accumulate in a connection's read buffer and [`parse_request`]
//! either produces one complete request (plus how many bytes it
//! consumed), asks for more bytes, or rejects the prefix. The function
//! is pure over the buffer, so segmentation — two requests in one read,
//! one request across five reads, a header straddling a boundary — can
//! never change the result.
//!
//! Semantics mirror the original reader exactly: lines are delimited by
//! `\n` with trailing `\r`/`\n` trimmed, a request line must look like
//! `METHOD TARGET HTTP/1...`, headers are `name: value` until a blank
//! line, and `Content-Length` bodies must be UTF-8. The caps below bound
//! how much a hostile connection can buffer.

use crate::http::HttpRequest;

/// Caps keeping one slow or hostile connection from hurting the rest.
/// A line's length is counted *including* its `\n` terminator (matching
/// the old `take(MAX_LINE + 1)` reader); the body cap is enforced from
/// the declared `Content-Length`, before any body byte is read.
pub(crate) const MAX_LINE: usize = 8 * 1024;
pub(crate) const MAX_HEADERS: usize = 64;
pub(crate) const MAX_BODY: usize = 1024 * 1024;

/// Outcome of trying to parse one request from the front of `buf`.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum ParseStep {
    /// The buffer holds a valid-so-far prefix; feed more bytes.
    Incomplete,
    /// One complete request plus the number of bytes it consumed.
    Request(HttpRequest, usize),
}

/// A rejected request prefix. The connection answers the mapped status
/// and closes; no recovery is attempted mid-stream.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum ParseError {
    /// Syntactically invalid input — answered with `400 bad_request`.
    Malformed(String),
    /// A declared `Content-Length` above [`MAX_BODY`] — answered with
    /// `413 payload_too_large` *before* buffering the body.
    TooLarge(String),
}

/// One scanned line: its content (terminators trimmed) and the offset
/// just past its `\n`.
struct Line<'a> {
    text: &'a str,
    end: usize,
}

/// Scans the line starting at `start`. `Ok(None)` means the terminator
/// has not arrived yet (and the partial line is still within bounds).
fn take_line(buf: &[u8], start: usize) -> Result<Option<Line<'_>>, ParseError> {
    let rest = &buf[start..];
    let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
        if rest.len() > MAX_LINE {
            return Err(ParseError::Malformed("line too long".to_string()));
        }
        return Ok(None);
    };
    if nl + 1 > MAX_LINE {
        return Err(ParseError::Malformed("line too long".to_string()));
    }
    let mut line = &rest[..nl];
    while let [head @ .., b'\r' | b'\n'] = line {
        line = head;
    }
    let text = std::str::from_utf8(line)
        .map_err(|_| ParseError::Malformed("stream did not contain valid UTF-8".to_string()))?;
    Ok(Some(Line {
        text,
        end: start + nl + 1,
    }))
}

/// Attempts to parse one complete request from the front of `buf`.
///
/// Errors are reported as soon as the offending *line* is complete —
/// a malformed request line is rejected without waiting for the rest of
/// the headers, and an oversized `Content-Length` is rejected without
/// waiting for (or buffering) the declared body.
pub(crate) fn parse_request(buf: &[u8]) -> Result<ParseStep, ParseError> {
    let Some(request_line) = take_line(buf, 0)? else {
        return Ok(ParseStep::Incomplete);
    };
    let (method, target, version) = {
        let mut parts = request_line.text.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1") => {
                (m.to_uppercase(), t.to_string(), v.to_string())
            }
            _ => {
                return Err(ParseError::Malformed("malformed request line".to_string()));
            }
        }
    };
    // HTTP/1.1 defaults to keep-alive; an explicit `Connection` header
    // (parsed below) overrides in either direction.
    let mut keep_alive = version == "HTTP/1.1";
    let mut content_length = 0usize;
    let mut cursor = request_line.end;
    let mut body_start = None;
    for _ in 0..MAX_HEADERS {
        let Some(line) = take_line(buf, cursor)? else {
            return Ok(ParseStep::Incomplete);
        };
        cursor = line.end;
        let header = line.text.trim_end();
        if header.is_empty() {
            body_start = Some(cursor);
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ParseError::Malformed("malformed header".to_string()));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let parsed = value
                .parse::<usize>()
                .map_err(|_| ParseError::Malformed("bad content-length".to_string()))?;
            if parsed > MAX_BODY {
                return Err(ParseError::TooLarge(format!(
                    "content-length {parsed} exceeds the {MAX_BODY}-byte body limit"
                )));
            }
            content_length = parsed;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    let Some(body_start) = body_start else {
        return Err(ParseError::Malformed("too many headers".to_string()));
    };
    let total = body_start + content_length;
    if buf.len() < total {
        return Ok(ParseStep::Incomplete);
    }
    let body = std::str::from_utf8(&buf[body_start..total])
        .map_err(|_| ParseError::Malformed("request body is not utf-8".to_string()))?
        .to_string();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    Ok(ParseStep::Request(
        HttpRequest {
            method,
            path,
            query,
            body,
            keep_alive,
        },
        total,
    ))
}
