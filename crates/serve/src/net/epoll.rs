//! Event-driven transport: a fixed worker pool over `epoll_wait`.
//!
//! Worker 0 owns the nonblocking listener and deals accepted streams
//! round-robin across all workers (itself included) through lock-free-ish
//! inboxes (a mutexed `Vec` drained once per wakeup) plus a [`Waker`].
//! Each worker runs a level-triggered readiness loop over a slab of
//! connection slots:
//!
//! * **Read**: drain the socket (capped per wakeup for fairness — the
//!   level-triggered poller re-reports a still-readable fd), feed the
//!   [`Conn`] machine, answer every complete pipelined request.
//! * **Write**: flush until `WouldBlock`; a partial write arms
//!   `EPOLLOUT` and the remainder goes out when the peer drains. Above
//!   the high-water mark the machine stops parsing and the worker drops
//!   read interest — per-connection backpressure, not global stalls.
//! * **Slow routes**: `POST /form`/`POST /grouping` sleep out the batch
//!   window, so they are shipped to a small [`OffloadPool`] of blocking
//!   threads; the connection pauses (preserving pipelined response
//!   order) and a generation-tagged completion re-enters through the
//!   worker's inbox. Stale completions for a recycled slot are dropped
//!   by the generation check.
//! * **Idle deadline**: a coarse [`TimerWheel`] enforces the same
//!   `--conn-timeout-ms` the blocking path applies via socket
//!   timeouts. Entries re-arm lazily: a wheel slot firing early (any
//!   activity since arming) just re-inserts at the real deadline, so
//!   busy connections cost one wheel hop per timeout window, not per
//!   request.

use crate::http::{route_full, HttpRequest, RouteOutcome};
use crate::net::conn::{Conn, Step};
use crate::state::ServeState;
use gf_netpoll::{Event, Interest, Poller, Waker};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Slab indices double as epoll tokens; the two reserved tokens sit at
/// the top of the space where no slab will ever reach.
const TOKEN_WAKER: u64 = u64::MAX;
const TOKEN_LISTENER: u64 = u64::MAX - 1;

/// Per-wakeup read cap: one firehose connection yields after this many
/// bytes so its neighbors get a turn (level-triggering re-reports it).
const READ_BUDGET: usize = 256 * 1024;
const READ_CHUNK: usize = 16 * 1024;

/// Cross-thread mailbox of one worker: freshly accepted streams from
/// the acceptor and completions from the offload pool.
#[derive(Default)]
struct Inbox {
    conns: Vec<TcpStream>,
    completions: Vec<Completion>,
}

/// Outcome of an offloaded request, addressed by (slot, generation).
struct Completion {
    token: usize,
    gen: u64,
    outcome: RouteOutcome,
}

/// The shared half of a worker: what other threads may touch.
pub(crate) struct WorkerShared {
    inbox: Mutex<Inbox>,
    waker: Waker,
}

impl WorkerShared {
    pub(crate) fn new() -> std::io::Result<WorkerShared> {
        Ok(WorkerShared {
            inbox: Mutex::new(Inbox::default()),
            waker: Waker::new()?,
        })
    }

    fn push_conn(&self, stream: TcpStream) {
        self.inbox.lock().unwrap().conns.push(stream);
        self.waker.wake();
    }

    fn push_completion(&self, completion: Completion) {
        self.inbox.lock().unwrap().completions.push(completion);
        self.waker.wake();
    }

    /// Wakes the worker with nothing in the inbox (shutdown nudge).
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }
}

/// Blocking thread pool for slow (batch-window) routes. Workers hold
/// the [`OffloadQueue`] handle for submission; the pool itself stays
/// with the server handle, which joins the threads on shutdown.
pub(crate) struct OffloadPool {
    queue: Arc<OffloadQueue>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct OffloadQueue {
    jobs: Mutex<VecDeque<OffloadJob>>,
    ready: Condvar,
    stop: AtomicBool,
}

impl OffloadQueue {
    fn submit(&self, job: OffloadJob) {
        self.jobs.lock().unwrap().push_back(job);
        self.ready.notify_one();
    }
}

struct OffloadJob {
    req: HttpRequest,
    dest: Arc<WorkerShared>,
    token: usize,
    gen: u64,
}

impl OffloadPool {
    pub(crate) fn spawn(threads: usize, state: Arc<ServeState>) -> OffloadPool {
        let queue = Arc::new(OffloadQueue {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let threads = (0..threads.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let state = Arc::clone(&state);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut jobs = queue.jobs.lock().unwrap();
                        loop {
                            if queue.stop.load(Ordering::SeqCst) {
                                return;
                            }
                            if let Some(job) = jobs.pop_front() {
                                break job;
                            }
                            jobs = queue.ready.wait(jobs).unwrap();
                        }
                    };
                    let outcome = route_full(&state, &job.req);
                    job.dest.push_completion(Completion {
                        token: job.token,
                        gen: job.gen,
                        outcome,
                    });
                })
            })
            .collect();
        OffloadPool { queue, threads }
    }

    /// The submission handle workers keep.
    pub(crate) fn handle(&self) -> Arc<OffloadQueue> {
        Arc::clone(&self.queue)
    }

    pub(crate) fn stop(mut self) {
        self.queue.stop.store(true, Ordering::SeqCst);
        self.queue.ready.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Coarse hashed timer wheel for idle deadlines. One entry per armed
/// connection; granularity is an eighth of the timeout (clamped to
/// 10ms..1s), so firings are at most one tick late — plenty for a
/// 30-second idle cutoff, and still responsive under the sub-second
/// timeouts the regression tests use.
struct TimerWheel {
    buckets: Vec<Vec<(usize, u64)>>,
    granularity: Duration,
    cursor: usize,
    next_tick: Instant,
}

impl TimerWheel {
    fn new(timeout: Duration, now: Instant) -> TimerWheel {
        let granularity = (timeout / 8)
            .max(Duration::from_millis(10))
            .min(Duration::from_secs(1));
        let spans = (timeout.as_nanos() / granularity.as_nanos()).max(1) as usize;
        TimerWheel {
            buckets: vec![Vec::new(); spans + 2],
            granularity,
            cursor: 0,
            next_tick: now + granularity,
        }
    }

    /// Inserts `(token, gen)` to fire at or shortly after `deadline`.
    fn arm(&mut self, token: usize, gen: u64, deadline: Instant) {
        let from_tick = deadline.saturating_duration_since(self.next_tick);
        let ticks = (from_tick.as_nanos() / self.granularity.as_nanos()) as usize + 1;
        let ticks = ticks.min(self.buckets.len() - 1);
        let idx = (self.cursor + ticks) % self.buckets.len();
        self.buckets[idx].push((token, gen));
    }

    /// How long the poller may sleep before the next tick is due.
    fn next_wait(&self, now: Instant) -> Duration {
        self.next_tick.saturating_duration_since(now)
    }

    /// Advances past every tick `now` has reached, collecting the due
    /// entries into `out` (callers re-arm the still-live ones).
    fn collect_due(&mut self, now: Instant, out: &mut Vec<(usize, u64)>) {
        while self.next_tick <= now {
            self.cursor = (self.cursor + 1) % self.buckets.len();
            out.append(&mut self.buckets[self.cursor]);
            self.next_tick += self.granularity;
        }
    }
}

/// One connection slot in a worker's slab.
struct Slot {
    stream: TcpStream,
    conn: Conn,
    /// Bumped on every slab-slot reuse; stale wheel entries and offload
    /// completions carry the old value and are ignored.
    gen: u64,
    interest: Interest,
    last_activity: Instant,
}

pub(crate) struct Worker {
    poller: Poller,
    shared: Arc<WorkerShared>,
    /// All workers' shared halves, for round-robin dealing (worker 0).
    peers: Vec<Arc<WorkerShared>>,
    next_peer: usize,
    /// Present on worker 0 only; registered nonblocking.
    listener: Option<TcpListener>,
    state: Arc<ServeState>,
    offload: Option<Arc<OffloadQueue>>,
    conn_timeout: Option<Duration>,
    wheel: Option<TimerWheel>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    next_gen: u64,
    stop: Arc<AtomicBool>,
}

impl Worker {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        shared: Arc<WorkerShared>,
        peers: Vec<Arc<WorkerShared>>,
        listener: Option<TcpListener>,
        state: Arc<ServeState>,
        offload: Option<Arc<OffloadQueue>>,
        conn_timeout: Option<Duration>,
        stop: Arc<AtomicBool>,
    ) -> std::io::Result<Worker> {
        let poller = Poller::new()?;
        poller.add(&shared.waker, TOKEN_WAKER, Interest::READ)?;
        if let Some(listener) = &listener {
            listener.set_nonblocking(true)?;
            poller.add(listener, TOKEN_LISTENER, Interest::READ)?;
        }
        let wheel = conn_timeout.map(|t| TimerWheel::new(t, Instant::now()));
        Ok(Worker {
            poller,
            shared,
            peers,
            next_peer: 0,
            listener,
            state,
            offload,
            conn_timeout,
            wheel,
            slots: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
            stop,
        })
    }

    pub(crate) fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut due: Vec<(usize, u64)> = Vec::new();
        loop {
            let timeout = self
                .wheel
                .as_ref()
                .map(|wheel| wheel.next_wait(Instant::now()));
            if let Err(err) = self.poller.wait(&mut events, timeout) {
                if self.stop.load(Ordering::SeqCst) {
                    return;
                }
                eprintln!("gf-serve: poll error: {err}");
                continue;
            }
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            for &ev in &events {
                match ev.token {
                    TOKEN_WAKER => self.shared.waker.drain(),
                    TOKEN_LISTENER => self.accept_ready(),
                    token => self.drive(token as usize, ev.readable || ev.error, ev.writable),
                }
            }
            self.drain_inbox();
            self.expire_idle(&mut due);
        }
    }

    /// Accepts until the backlog is drained, dealing streams round-robin
    /// across the worker pool.
    fn accept_ready(&mut self) {
        loop {
            let listener = self.listener.as_ref().expect("listener event on worker 0");
            match listener.accept() {
                Ok((stream, _)) => {
                    self.state
                        .stats
                        .conns_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    let target = self.next_peer % self.peers.len();
                    self.next_peer = self.next_peer.wrapping_add(1);
                    if Arc::ptr_eq(&self.peers[target], &self.shared) {
                        self.register(stream);
                    } else {
                        self.peers[target].push_conn(stream);
                    }
                }
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(err) => {
                    eprintln!("gf-serve: accept error: {err}");
                    return;
                }
            }
        }
    }

    fn register(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.slots.len() - 1
        });
        let interest = Interest::READ;
        if self.poller.add(&stream, token as u64, interest).is_err() {
            self.free.push(token);
            return;
        }
        self.next_gen += 1;
        let gen = self.next_gen;
        let now = Instant::now();
        if let (Some(wheel), Some(timeout)) = (&mut self.wheel, self.conn_timeout) {
            wheel.arm(token, gen, now + timeout);
        }
        self.slots[token] = Some(Slot {
            stream,
            conn: Conn::new(self.offload.is_some()),
            gen,
            interest,
            last_activity: now,
        });
    }

    fn drain_inbox(&mut self) {
        let Inbox { conns, completions } = {
            let mut inbox = self.shared.inbox.lock().unwrap();
            std::mem::take(&mut *inbox)
        };
        for completion in completions {
            let live = self
                .slots
                .get(completion.token)
                .and_then(Option::as_ref)
                .is_some_and(|slot| slot.gen == completion.gen);
            if !live {
                continue; // connection died (or slot recycled) mid-offload
            }
            if let Some(slot) = self.slots[completion.token].as_mut() {
                slot.conn.complete_offload(&completion.outcome);
                slot.last_activity = Instant::now();
            }
            // Flush the fresh response and resume parsing pipelined
            // requests that queued up behind the offloaded one.
            self.drive(completion.token, false, true);
        }
        for stream in conns {
            self.register(stream);
        }
    }

    /// Times out idle connections and lazily re-arms the live ones.
    fn expire_idle(&mut self, due: &mut Vec<(usize, u64)>) {
        let Some(timeout) = self.conn_timeout else {
            return;
        };
        let now = Instant::now();
        if let Some(wheel) = &mut self.wheel {
            wheel.collect_due(now, due);
        }
        for (token, gen) in due.drain(..) {
            let Some(slot) = self.slots.get(token).and_then(Option::as_ref) else {
                continue;
            };
            if slot.gen != gen {
                continue;
            }
            let deadline = slot.last_activity + timeout;
            if deadline <= now {
                self.state
                    .stats
                    .conns_timed_out
                    .fetch_add(1, Ordering::Relaxed);
                self.close(token);
            } else if let Some(wheel) = &mut self.wheel {
                wheel.arm(token, gen, deadline);
            }
        }
    }

    /// Runs one connection forward: optional read drain, request
    /// stepping, flush, then interest/done bookkeeping. The slot is
    /// taken out of the slab while driven so `&mut self` stays usable.
    fn drive(&mut self, token: usize, do_read: bool, do_write: bool) {
        let Some(mut slot) = self.slots.get_mut(token).and_then(Option::take) else {
            return;
        };
        slot.last_activity = Instant::now();
        let mut dead = false;
        if do_read {
            dead = !Self::read_some(&mut slot);
        }
        if !dead && do_write {
            dead = !Self::flush_some(&mut slot);
        }
        if !dead {
            dead = !self.pump(token, &mut slot);
        }
        if dead || slot.conn.done() {
            let _ = self.poller.delete(&slot.stream);
            self.free.push(token);
            // slot drops here, closing the fd.
        } else {
            let want = Interest {
                readable: slot.conn.wants_read(),
                writable: slot.conn.has_pending_write(),
            };
            if want != slot.interest && self.poller.modify(&slot.stream, token as u64, want).is_ok()
            {
                slot.interest = want;
            }
            self.slots[token] = Some(slot);
        }
    }

    /// Alternates stepping the machine and flushing until neither makes
    /// progress (more bytes needed, backpressure, or `WouldBlock`).
    /// Returns `false` when the connection died mid-write.
    fn pump(&mut self, token: usize, slot: &mut Slot) -> bool {
        let mut write_blocked = false;
        loop {
            let mut progressed = false;
            loop {
                match slot.conn.step(&self.state) {
                    Step::Responded => progressed = true,
                    Step::Idle => break,
                    Step::Offload(req) => {
                        let pool = self.offload.as_ref().expect("offload step without pool");
                        pool.submit(OffloadJob {
                            req,
                            dest: Arc::clone(&self.shared),
                            token,
                            gen: slot.gen,
                        });
                        progressed = true;
                        break;
                    }
                }
            }
            if !write_blocked && slot.conn.has_pending_write() {
                if !Self::flush_until_blocked(slot, &mut write_blocked) {
                    return false;
                }
                progressed = true;
            }
            if !progressed {
                return true;
            }
        }
    }

    /// Drains the socket into the machine, up to the fairness budget.
    /// Returns `false` when the connection errored.
    fn read_some(slot: &mut Slot) -> bool {
        let mut budget = READ_BUDGET;
        let mut buf = [0u8; READ_CHUNK];
        while budget > 0 {
            match slot.stream.read(&mut buf) {
                Ok(0) => {
                    slot.conn.mark_eof();
                    return true;
                }
                Ok(n) => {
                    slot.conn.ingest(&buf[..n]);
                    budget = budget.saturating_sub(n);
                }
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }

    /// One bounded flush attempt (used on `EPOLLOUT`).
    fn flush_some(slot: &mut Slot) -> bool {
        let mut blocked = false;
        Self::flush_until_blocked(slot, &mut blocked)
    }

    fn flush_until_blocked(slot: &mut Slot, blocked: &mut bool) -> bool {
        while slot.conn.has_pending_write() {
            match slot.stream.write(slot.conn.pending_write()) {
                Ok(0) => return false,
                Ok(n) => slot.conn.consume_written(n),
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                    *blocked = true;
                    return true;
                }
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        true
    }

    fn close(&mut self, token: usize) {
        if let Some(slot) = self.slots.get_mut(token).and_then(Option::take) {
            let _ = self.poller.delete(&slot.stream);
            self.free.push(token);
        }
    }
}
