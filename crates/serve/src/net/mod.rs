//! The serving transport layer: one [`Server`] facade over two
//! interchangeable transports.
//!
//! * `epoll` — the default on Linux: a fixed worker pool driven by
//!   `epoll_wait` (via the `gf-netpoll` crate), nonblocking accept,
//!   per-connection state machines and write-side backpressure. Scales
//!   to tens of thousands of persistent keep-alive connections on a
//!   handful of threads.
//! * `blocking` — the portable fallback (`--net blocking`, and every
//!   non-Linux platform): thread-per-connection on plain `std::net`,
//!   hardened with socket deadlines and a concurrency cap.
//!
//! Both transports share the `conn` state machine and `parser`, and
//! both dispatch into the same [`crate::http::route_full`] — so routing,
//! golden, property and crash tests apply to either transport unchanged,
//! and the two cannot disagree about protocol behavior.

pub(crate) mod blocking;
pub(crate) mod conn;
pub(crate) mod epoll;
pub(crate) mod parser;

use crate::state::ServeState;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which transport moves the bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetMode {
    /// Event-driven readiness loop (Linux only).
    Epoll,
    /// Portable thread-per-connection fallback.
    Blocking,
}

impl NetMode {
    /// Parses a `--net` flag value.
    pub fn parse(text: &str) -> Option<NetMode> {
        match text {
            "epoll" => Some(NetMode::Epoll),
            "blocking" => Some(NetMode::Blocking),
            _ => None,
        }
    }

    /// Epoll where the kernel offers it, blocking elsewhere.
    pub fn default_for_platform() -> NetMode {
        if gf_netpoll::supported() {
            NetMode::Epoll
        } else {
            NetMode::Blocking
        }
    }

    /// The flag spelling, for logs and `/stats`-adjacent output.
    pub fn as_str(self) -> &'static str {
        match self {
            NetMode::Epoll => "epoll",
            NetMode::Blocking => "blocking",
        }
    }
}

/// Transport tuning; every field has a production-safe default.
#[derive(Debug, Clone)]
pub struct NetOptions {
    /// Transport selection (`--net`).
    pub mode: NetMode,
    /// Idle/stall deadline per connection (`--conn-timeout-ms`;
    /// `None` disables). Blocking path: socket read/write timeouts.
    /// Epoll path: timer-wheel idle deadline.
    pub conn_timeout: Option<Duration>,
    /// Cap on concurrent handler threads in the blocking transport
    /// (`--max-conn-threads`).
    pub max_conn_threads: usize,
    /// Epoll worker threads (`--net-workers`; 0 = one per core).
    pub workers: usize,
}

impl Default for NetOptions {
    fn default() -> NetOptions {
        NetOptions {
            mode: NetMode::default_for_platform(),
            conn_timeout: Some(Duration::from_millis(30_000)),
            max_conn_threads: 1024,
            workers: 0,
        }
    }
}

/// The serving process: a TCP listener, the shared state, the transport
/// configuration and the background refresh worker.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    net: NetOptions,
}

/// What the transport spawned; consumed by [`ServerHandle::stop`].
enum Transport {
    Blocking {
        accept_thread: Option<std::thread::JoinHandle<()>>,
    },
    Epoll {
        workers: Vec<std::thread::JoinHandle<()>>,
        shared: Vec<Arc<epoll::WorkerShared>>,
        offload: Option<epoll::OffloadPool>,
    },
}

/// Handle to a server running on background threads (used by tests and
/// embedders; the binary calls [`Server::run`] instead).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    stop: Arc<AtomicBool>,
    transport: Transport,
    refresh_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared serving state (for white-box assertions in tests).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Stops accepting, drains the refresh worker and joins the
    /// transport threads.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        match &mut self.transport {
            Transport::Blocking { accept_thread } => {
                // Unblock a parked accept with a wake-up connection.
                let _ = TcpStream::connect(self.addr);
                if let Some(t) = accept_thread.take() {
                    let _ = t.join();
                }
            }
            Transport::Epoll {
                workers,
                shared,
                offload,
            } => {
                for s in shared.iter() {
                    s.wake();
                }
                for t in workers.drain(..) {
                    let _ = t.join();
                }
                if let Some(pool) = offload.take() {
                    pool.stop();
                }
            }
        }
        self.state.shutdown();
        if let Some(t) = self.refresh_thread.take() {
            let _ = t.join();
        }
    }
}

impl Server {
    /// Binds to `addr` (use port 0 to let the OS pick a free port) with
    /// default transport options.
    pub fn bind(addr: impl ToSocketAddrs, state: Arc<ServeState>) -> std::io::Result<Server> {
        Server::bind_with(addr, state, NetOptions::default())
    }

    /// Binds with explicit transport options. Requesting
    /// [`NetMode::Epoll`] on a platform without epoll is refused here,
    /// at startup, rather than failing at the first connection.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        state: Arc<ServeState>,
        net: NetOptions,
    ) -> std::io::Result<Server> {
        if net.mode == NetMode::Epoll && !gf_netpoll::supported() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "the epoll transport is unavailable on this platform; use --net blocking",
            ));
        }
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            state,
            net,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the transport on the calling thread's lifetime (the worker
    /// threads are joined, so this never returns in normal operation),
    /// spawning the background refresh worker.
    pub fn run(self) -> std::io::Result<()> {
        let handle = self.spawn()?;
        match handle.transport {
            Transport::Blocking { accept_thread } => {
                if let Some(t) = accept_thread {
                    let _ = t.join();
                }
            }
            Transport::Epoll { workers, .. } => {
                for t in workers {
                    let _ = t.join();
                }
            }
        }
        Ok(())
    }

    /// Starts the transport and refresh worker on background threads,
    /// returning a handle to stop them. Used by tests and benches.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let refresh_thread = {
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || state.run_refresh_worker())
        };
        let transport = match self.net.mode {
            NetMode::Blocking => {
                let gate = Arc::new(blocking::Gate::new(self.net.max_conn_threads));
                let state = Arc::clone(&self.state);
                let timeout = self.net.conn_timeout;
                let stop_flag = Arc::clone(&stop);
                let listener = self.listener;
                let accept_thread = std::thread::spawn(move || {
                    blocking::run_accept_loop(listener, state, timeout, gate, stop_flag);
                });
                Transport::Blocking {
                    accept_thread: Some(accept_thread),
                }
            }
            NetMode::Epoll => {
                let workers = resolve_workers(self.net.workers);
                let offload = epoll::OffloadPool::spawn(workers.max(2), Arc::clone(&self.state));
                let shared: Vec<Arc<epoll::WorkerShared>> = (0..workers)
                    .map(|_| epoll::WorkerShared::new().map(Arc::new))
                    .collect::<std::io::Result<_>>()?;
                let mut listener = Some(self.listener);
                let threads = shared
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        let worker = epoll::Worker::new(
                            Arc::clone(s),
                            shared.clone(),
                            if i == 0 { listener.take() } else { None },
                            Arc::clone(&self.state),
                            Some(offload.handle()),
                            self.net.conn_timeout,
                            Arc::clone(&stop),
                        )?;
                        Ok(std::thread::spawn(move || worker.run()))
                    })
                    .collect::<std::io::Result<Vec<_>>>()?;
                Transport::Epoll {
                    workers: threads,
                    shared,
                    offload: Some(offload),
                }
            }
        };
        Ok(ServerHandle {
            addr,
            state: self.state,
            stop,
            transport,
            refresh_thread: Some(refresh_thread),
        })
    }
}

/// `0` means one readiness worker per available core (capped: readiness
/// loops beyond the core count only add context switches).
fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}
