//! Connection-sweep load harness: many persistent keep-alive
//! connections driving interleaved `/v1/rate` + `/v1/group` +
//! `/v1/stats` traffic, with latency percentiles and consistency
//! checks.
//!
//! Shared by the `tests/load.rs` sweeps, the `conn_sweep` bench and the
//! `conn_sweep` example so all three measure exactly the same workload.
//! The harness is deliberately a *lockstep* client per connection (one
//! request in flight each): concurrency comes from the number of open
//! connections, which is the axis the transport work targets — 100 →
//! 1k → 10k persistent connections — not from per-connection
//! pipelining.
//!
//! Consistency is checked while the load runs: every response carrying
//! a `"version"` field must be monotone per connection (snapshot
//! versions never move backwards), and every `/v1/rate` acknowledgment
//! is counted so callers can reconcile the ledger against
//! `/v1/stats.rates_accepted` afterwards — the "zero lost updates"
//! criterion.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One sweep point: how many connections, how much traffic.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Persistent keep-alive connections held open for the whole run.
    pub connections: usize,
    /// Requests issued per connection (interleaved mix).
    pub requests_per_conn: usize,
    /// Driver threads the connections are sharded across (0 = auto).
    pub threads: usize,
    /// User-id space for `/v1/group/{user}` and `/v1/rate` traffic.
    pub users: u32,
    /// Item-id space for `/v1/rate` traffic.
    pub items: u32,
}

/// What one sweep measured.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Connections actually opened.
    pub connections: usize,
    /// Total requests answered (any status).
    pub requests: u64,
    /// Responses with an unexpected status (not 200/202/409).
    pub errors: u64,
    /// `/v1/rate` requests acknowledged with 202.
    pub rates_accepted: u64,
    /// Wall-clock for the request phase (connections already open).
    pub elapsed: Duration,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Requests per second over the request phase.
    pub rps: f64,
    /// Highest snapshot version observed in any response.
    pub max_version: u64,
}

/// Soft open-file limit of this process (connection budget for
/// in-process sweeps); falls back to 1024 when `/proc` is unreadable.
pub fn fd_budget() -> usize {
    let Ok(limits) = std::fs::read_to_string("/proc/self/limits") else {
        return 1024;
    };
    limits
        .lines()
        .find(|l| l.starts_with("Max open files"))
        .and_then(|l| l.split_whitespace().nth(3))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
}

/// One persistent keep-alive connection with its consistency state.
struct SweepConn {
    stream: TcpStream,
    /// Last snapshot version seen on this connection; responses must
    /// never report an older one.
    last_version: u64,
    /// Reused response buffer.
    buf: Vec<u8>,
}

/// Reads one HTTP/1.1 response off `stream` into `buf`; returns
/// `(status, body_start, body_len)`. The caller owns keep-alive.
fn read_response(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
) -> std::io::Result<(u16, usize, usize)> {
    buf.clear();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_double_crlf(buf) {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 header"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "missing content-length")
        })?;
    let body_start = header_end + 4;
    while buf.len() < body_start + content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    Ok((status, body_start, content_length))
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Pulls `"version":N` out of a JSON body without a full parse (the
/// bodies are server-generated, so the cheap scan is reliable).
fn scan_version(body: &str) -> Option<u64> {
    let at = body.find("\"version\":")?;
    let digits: String = body[at + "\"version\":".len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Errors a sweep can fail with beyond plain I/O.
#[derive(Debug)]
pub enum SweepError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A response reported an older snapshot version than one already
    /// seen on the same connection.
    VersionRegressed {
        /// Version previously observed on the connection.
        seen: u64,
        /// The older version the offending response reported.
        got: u64,
    },
}

impl From<std::io::Error> for SweepError {
    fn from(err: std::io::Error) -> SweepError {
        SweepError::Io(err)
    }
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Io(err) => write!(f, "sweep i/o error: {err}"),
            SweepError::VersionRegressed { seen, got } => {
                write!(f, "snapshot version regressed: saw {seen}, then {got}")
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// Issues one request on `conn` and validates the response. Returns
/// `(status, version_seen, latency)`.
fn one_request(
    conn: &mut SweepConn,
    seq: u64,
    users: u32,
    items: u32,
) -> Result<(u16, Option<u64>, Duration), SweepError> {
    // Interleave the three endpoint families, weighted toward reads the
    // way a serving tier sees them: group lookups, stats polls, rates.
    let wire = match seq % 4 {
        0 => {
            let body = format!(
                "{{\"user\":{},\"item\":{},\"rating\":{}}}",
                seq % u64::from(users.max(1)),
                seq % u64::from(items.max(1)),
                1 + (seq % 5),
            );
            format!(
                "POST /v1/rate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
                body.len(),
                body
            )
        }
        1 => format!(
            "GET /v1/group/{} HTTP/1.1\r\n\r\n",
            seq % u64::from(users.max(1))
        ),
        _ => "GET /v1/stats HTTP/1.1\r\n\r\n".to_string(),
    };
    let started = Instant::now();
    conn.stream.write_all(wire.as_bytes())?;
    let mut buf = std::mem::take(&mut conn.buf);
    let result = read_response(&mut conn.stream, &mut buf);
    conn.buf = buf;
    let (status, body_start, body_len) = result?;
    let latency = started.elapsed();
    let body = std::str::from_utf8(&conn.buf[body_start..body_start + body_len]).unwrap_or("");
    let version = scan_version(body);
    if let Some(v) = version {
        if v < conn.last_version {
            return Err(SweepError::VersionRegressed {
                seen: conn.last_version,
                got: v,
            });
        }
        conn.last_version = v;
    }
    Ok((status, version, latency))
}

/// Opens `cfg.connections` persistent connections to `addr`, drives the
/// interleaved workload over all of them, and reports percentiles and
/// throughput. Fails fast on any transport error or version regression.
pub fn run_sweep(addr: SocketAddr, cfg: &SweepConfig) -> Result<SweepReport, SweepError> {
    let threads = gf_core::resolve_threads(cfg.threads, cfg.connections.max(1));
    let mut conns: Vec<Vec<SweepConn>> = (0..threads).map(|_| Vec::new()).collect();
    for i in 0..cfg.connections {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        conns[i % threads].push(SweepConn {
            stream,
            last_version: 0,
            buf: Vec::new(),
        });
    }
    let rates_accepted = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let max_version = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut joins = Vec::new();
    for (t, mut shard) in conns.into_iter().enumerate() {
        let rates_accepted = Arc::clone(&rates_accepted);
        let errors = Arc::clone(&errors);
        let max_version = Arc::clone(&max_version);
        let cfg = cfg.clone();
        joins.push(std::thread::spawn(move || {
            let mut latencies: Vec<u64> = Vec::new();
            let mut requests = 0u64;
            for round in 0..cfg.requests_per_conn {
                for (c, conn) in shard.iter_mut().enumerate() {
                    // Decorrelate the endpoint mix across connections so
                    // every round exercises all three families at once.
                    let seq = (t + c + round * 7) as u64;
                    let (status, version, latency) = one_request(conn, seq, cfg.users, cfg.items)?;
                    requests += 1;
                    latencies.push(latency.as_micros() as u64);
                    match status {
                        202 => {
                            if seq % 4 == 0 {
                                rates_accepted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        200 | 409 => {}
                        _ => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if let Some(v) = version {
                        max_version.fetch_max(v, Ordering::Relaxed);
                    }
                }
            }
            Ok::<(Vec<u64>, u64), SweepError>((latencies, requests))
        }));
    }
    let mut latencies: Vec<u64> = Vec::new();
    let mut requests = 0u64;
    for join in joins {
        let (shard_latencies, shard_requests) =
            join.join().expect("sweep driver thread panicked")?;
        latencies.extend(shard_latencies);
        requests += shard_requests;
    }
    let elapsed = started.elapsed();
    latencies.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[rank]
    };
    Ok(SweepReport {
        connections: cfg.connections,
        requests,
        errors: errors.load(Ordering::Relaxed),
        rates_accepted: rates_accepted.load(Ordering::Relaxed),
        elapsed,
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
        rps: if elapsed.as_secs_f64() > 0.0 {
            requests as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        max_version: max_version.load(Ordering::Relaxed),
    })
}

impl SweepReport {
    /// One-line summary, the format EXPERIMENTS.md tables quote.
    pub fn summary(&self) -> String {
        format!(
            "conns={} reqs={} errors={} p50={}us p99={}us rps={:.0} max_version={}",
            self.connections,
            self.requests,
            self.errors,
            self.p50_us,
            self.p99_us,
            self.rps,
            self.max_version
        )
    }
}
