//! A minimal JSON value, parser and serializer.
//!
//! The environment is offline (no `serde`), so the serving layer
//! hand-rolls the exact JSON subset its endpoints exchange, the same way
//! the `vendor/` stubs stand in for their crates: objects, arrays,
//! strings (with `\uXXXX` escapes), finite numbers, booleans and null.
//! Serialization renders numbers via Rust's shortest-round-trip `Display`,
//! so `parse(render(v))` is lossless for every value the server emits.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has no NaN/Inf).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Builds a `Json::Obj` from `("key", value)` pairs.
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                debug_assert!(n.is_finite(), "JSON cannot carry {n}");
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (ix, item) in items.iter().enumerate() {
                    if ix > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (ix, (k, v)) in fields.iter().enumerate() {
                    if ix > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Nesting cap: a request body has no business being deeper.
const MAX_DEPTH: usize = 32;

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            at: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &'static str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat(b']') {
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    if self.eat(b']') {
                        return Ok(Json::Arr(items));
                    }
                    if !self.eat(b',') {
                        return Err(self.err("expected ',' or ']'"));
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.eat(b'}') {
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    if !self.eat(b':') {
                        return Err(self.err("expected ':'"));
                    }
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    if self.eat(b'}') {
                        return Ok(Json::Obj(fields));
                    }
                    if !self.eat(b',') {
                        return Err(self.err("expected ',' or '}'"));
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if !self.eat(b'"') {
            return Err(self.err("expected string"));
        }
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = *self.bytes.get(self.pos).ok_or(self.err("bad escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired —
                            // no endpoint emits astral-plane escapes.
                            out.push(char::from_u32(hex).ok_or(self.err("bad \\u escape"))?);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        let n: f64 = text.parse().map_err(|_| JsonError {
            at: start,
            message: "invalid number",
        })?;
        if !n.is_finite() {
            return Err(JsonError {
                at: start,
                message: "number out of range",
            });
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("3.5").unwrap(), Json::Num(3.5));
        assert_eq!(Json::parse("-12e2").unwrap(), Json::Num(-1200.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"user": 3, "tags": ["a", "b"], "x": {"y": null}}"#).unwrap();
        assert_eq!(v.get("user").and_then(Json::as_u64), Some(3));
        assert_eq!(
            v.get("tags").and_then(Json::as_arr).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(v.get("x").and_then(|x| x.get("y")), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("a\"b\\c\nd\te\u{1}✓".into());
        let rendered = original.to_string();
        assert_eq!(Json::parse(&rendered).unwrap(), original);
        assert_eq!(
            Json::parse(r#""\u2713 \/ \b\f""#).unwrap(),
            Json::Str("✓ / \u{8}\u{c}".into())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1 2", "\"\\x\"", "nan", "[1]]", "\"open",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn render_round_trips() {
        let v = obj([
            ("n", Json::from(42u64)),
            ("f", Json::from(2.25)),
            ("s", Json::from("text")),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(false)])),
        ]);
        let text = v.to_string();
        assert_eq!(text, r#"{"n":42,"f":2.25,"s":"text","a":[null,false]}"#);
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(10.0).to_string(), "10");
        assert_eq!(Json::Num(-3.0).to_string(), "-3");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
    }
}
