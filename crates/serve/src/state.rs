//! Shared serving state: immutable snapshots, a named-grouping registry,
//! incremental rating updates and the bounded background re-formation pass.
//!
//! ## Consistency model
//!
//! All queries (`/group`, `/recommend`, `/health`) read one [`Snapshot`] —
//! an immutable, `Arc`-shared bundle of the rating matrix, the preference
//! index and a **registry of named groupings** ([`GroupingState`]), each
//! carrying its own [`FormationConfig`], [`FormationResult`] and
//! user→group assignment. Readers clone the `Arc` under a briefly-held
//! read lock and then work lock-free; writers build the next snapshot off
//! to the side and swap it in with a briefly-held write lock. A query
//! therefore always sees an internally consistent formation, never a
//! half-applied update.
//!
//! ## The registry
//!
//! Every server has at least the `"default"` grouping (built from
//! [`ServeConfig::formation`]); additional groupings register at boot
//! ([`ServeConfig::with_grouping`]) or at runtime (`POST /grouping`,
//! [`ServeState::form_named`]). All groupings share **one** rating matrix
//! and preference index by `Arc` — registering ten tenant groupings costs
//! ten formations, not ten O(nnz) rating copies. Each grouping keeps a
//! per-grouping `version`: the global snapshot version at which its
//! formation last changed. A rating pass refreshes *every* grouping (so
//! all land on the pass's version); a `/form` touches only the named one.
//!
//! Rating updates (`/rate`) are **eventually consistent**: they enqueue
//! into a pending journal and return immediately; the background
//! re-formation pass (one bounded batch of updates per pass, see
//! [`ServeConfig::max_updates_per_pass`]) patches the matrix
//! ([`RatingMatrix::upsert_batch`]) and the affected users' preference
//! lists ([`PrefIndex::patch_users`]) **once**, then fans the dirty set
//! out to each registered grouping, which re-forms one of two ways,
//! chosen per grouping per pass by [`gf_core::RefreshMode`] from the
//! dirty-set size:
//!
//! * **incremental** — a standing [`gf_core::IncrementalFormer`] (one per
//!   grouping, keyed by name) moves only the dirty users between their
//!   greedy buckets and splices the result back into the grouping, making
//!   refresh cost proportional to the update batch;
//! * **cold** — a full re-formation over the whole population (also the
//!   fallback whenever the standing former's lineage broke, e.g. after a
//!   `/form` or a cold pass, and whenever an item admission moved the
//!   grouping's effective top-`k` length — see below).
//!
//! Both paths are **test-enforced** to converge, per grouping, to exactly
//! the snapshot a cold rebuild over the same ratings produces
//! (`tests/serve_props.rs`); `/stats` reports which path each grouping
//! refresh took. So that the two paths agree on grouping *shape* under
//! any thread count, every snapshot an `Auto`/`Incremental` grouping
//! installs comes from the plain greedy (Step-1 threaded); the
//! population-sharded former serves
//! [`RefreshMode::Cold`](gf_core::RefreshMode) groupings, where the
//! incremental path never runs.
//!
//! ## Admission-aware refresh scheduling
//!
//! Item admissions interact with the warm formers: while the catalogue
//! has fewer than `k` items, every top-`k` signature has the catalogue's
//! length; the admission that pushes the catalogue past a grouping's `k`
//! changes every user's signature at once, so an incremental refresh
//! would dirty the whole population. When a drained batch contains such
//! a crossing, the pass **splits** it: the prefix through the last
//! item-admitting record applies first (the crossing grouping re-forms
//! cold, exactly once), and the user-rating tail is spliced back onto the
//! *front* of the journal to ride the re-warmed former on the next pass.
//! Journal order — and therefore the chunking-invariant versioning — is
//! preserved.
//!
//! ## The quality loop
//!
//! `POST /v1/feedback` events ride the same pending journal (and the same
//! WAL, as their own record kind) as ratings: a pass folds each into the
//! snapshot's sliding [`OnlineEval`] window in journal order, advancing
//! the version by one per record just like a rating does — so crash
//! digests stay chunking-invariant. A feedback-only pass never re-forms
//! (the window is not an input to formation); it clones the groupings
//! forward to the pass's version and re-syncs the standing formers so
//! later rating passes still refresh incrementally. Candidate lists for
//! `exclude_rated` filtering come from a [`CandidateEngine`] behind a
//! per-`(grouping, group)` cache keyed by grouping version
//! ([`ServeState::candidate_items`]): a version bump from any pass
//! invalidates stale entries on the next miss.

use crate::batch::{BatchOutcome, Batcher};
use crate::remap::RawIdLayer;
use gf_core::{
    CandidateEngine, FeedbackEvent, FormationConfig, FormationResult, GfError, GroupFormer,
    GrowthPolicy, IncrementalFormer, OnlineEval, PrefIndex, RatingDelta, RatingMatrix, Result,
    ShardedFormer,
};
use gf_persist::wal::{Wal, WalPayload, WalRecord};
use gf_persist::{CheckpointState, StateDigest};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::time::Duration;

/// Everything that parameterises a serving instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Formation configuration of the `"default"` grouping — used for the
    /// initial formation and for background re-formation (until a `/form`
    /// request overrides it).
    pub formation: FormationConfig,
    /// Additional named groupings registered at boot, in registration
    /// order. A later entry for the same name (including `"default"`)
    /// overrides the earlier one.
    pub groupings: Vec<(String, FormationConfig)>,
    /// How long a `/form` leader waits for concurrent same-configuration
    /// requests to join its batch before running.
    pub batch_window: Duration,
    /// Upper bound on how many rating updates one background re-formation
    /// pass applies; more pending updates simply take more passes.
    pub max_updates_per_pass: usize,
    /// Repair-pass budget for the standing incremental formers
    /// ([`IncrementalFormer::with_max_swaps`]): `None` (the default) keeps
    /// the unbounded, exactly-cold repair; `Some(n)` caps how many buckets
    /// one refresh may admit, bounding worst-case refresh latency at the
    /// documented quality bound. A capped server still converges once
    /// updates quiesce — the background worker runs catch-up passes over
    /// an empty journal until the deferred admissions drain.
    pub max_swaps: Option<usize>,
    /// Capacity of the sliding feedback window behind the online quality
    /// metrics (`/v1/feedback`, the `quality` block of `/v1/stats`). The
    /// window keeps the most recent consumptions only; the cumulative
    /// observed count survives eviction.
    pub feedback_window: usize,
}

impl ServeConfig {
    /// Defaults: only the `"default"` grouping, a 5 ms batching window, at
    /// most 1024 updates per pass, an unbounded repair budget and a
    /// 1024-event feedback window.
    pub fn new(formation: FormationConfig) -> Self {
        ServeConfig {
            formation,
            groupings: Vec::new(),
            batch_window: Duration::from_millis(5),
            max_updates_per_pass: 1024,
            max_swaps: None,
            feedback_window: 1024,
        }
    }

    /// Registers an additional named grouping to build at boot.
    pub fn with_grouping(mut self, name: impl Into<String>, cfg: FormationConfig) -> Self {
        self.groupings.push((name.into(), cfg));
        self
    }

    /// Overrides the `/form` batching window.
    pub fn with_batch_window(mut self, window: Duration) -> Self {
        self.batch_window = window;
        self
    }

    /// Overrides the per-pass update bound (clamped to at least 1).
    pub fn with_max_updates_per_pass(mut self, max: usize) -> Self {
        self.max_updates_per_pass = max.max(1);
        self
    }

    /// Caps the incremental formers' per-refresh repair budget (see
    /// [`ServeConfig::max_swaps`]).
    pub fn with_max_swaps(mut self, max_swaps: usize) -> Self {
        self.max_swaps = Some(max_swaps);
        self
    }

    /// Overrides the sliding feedback-window capacity (see
    /// [`ServeConfig::feedback_window`]).
    pub fn with_feedback_window(mut self, capacity: usize) -> Self {
        self.feedback_window = capacity;
        self
    }
}

/// Checks that a grouping name is non-empty, at most 64 bytes and uses
/// only URL- and checkpoint-safe characters (`[A-Za-z0-9_.-]`).
pub fn validate_grouping_name(name: &str) -> Result<()> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.');
    if ok {
        Ok(())
    } else {
        Err(GfError::InvalidGrouping(format!(
            "grouping name {name:?} must be 1..=64 chars of [A-Za-z0-9_.-]"
        )))
    }
}

/// Durable progress carried by every snapshot: how much of the journal
/// the snapshot's state bakes in. A checkpoint freezes these alongside
/// the matrix so a warm restart knows exactly which WAL records are
/// already applied (`seq <= wal_seq`) and which to replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Progress {
    /// Highest journal sequence number applied into this snapshot
    /// (0 before any rating lands).
    pub wal_seq: u64,
    /// Total rating updates applied since the serving lineage began
    /// (survives restarts, unlike the process-local `/stats` counters).
    pub applied: u64,
    /// Users admitted at serve time under [`gf_core::GrowthPolicy::Grow`],
    /// cumulative across restarts.
    pub users_admitted: u64,
    /// Items admitted at serve time, cumulative across restarts.
    pub items_admitted: u64,
}

/// One named grouping inside a snapshot: its configuration, formation,
/// derived user→group assignment and the global snapshot version at
/// which the formation last changed.
#[derive(Debug)]
pub struct GroupingState {
    /// The formation configuration the groups were formed under.
    pub config: FormationConfig,
    /// The current formation.
    pub formation: FormationResult,
    /// `assignment[u]` = index into `formation.grouping.groups`, `None`
    /// for users the formation did not cover (impossible for valid
    /// formations, kept as `Option` for defense in depth).
    pub assignment: Vec<Option<usize>>,
    /// Global snapshot version at which this grouping's formation was
    /// last (re)computed. Rating passes refresh every grouping, so after
    /// a pass all groupings carry the pass's version; a `/form` advances
    /// only the named grouping.
    pub version: u64,
}

/// One immutable, internally consistent view of the serving state.
///
/// The matrix and preference index are `Arc`-shared because snapshot
/// succession never mutates them: a background pass *builds* the patched
/// successors ([`RatingMatrix::with_upserts`], [`PrefIndex::patched`])
/// while the old structures stay live for concurrent readers, and a
/// `/form` (which changes only one grouping) shares them wholesale. All
/// registered groupings read the same two `Arc`s — one O(nnz) rating
/// copy regardless of how many groupings are registered.
#[derive(Debug)]
pub struct Snapshot {
    /// The rating matrix every grouping's formation was computed on.
    pub matrix: Arc<RatingMatrix>,
    /// Preference index built on (or incrementally patched to match)
    /// `matrix`.
    pub prefs: Arc<PrefIndex>,
    /// The named-grouping registry, ordered by name. Always contains
    /// [`Snapshot::DEFAULT_GROUPING`].
    pub groupings: BTreeMap<String, Arc<GroupingState>>,
    /// Monotonic snapshot version. A background pass advances it by one
    /// **per applied journal record**, so the version a given rating
    /// history produces is independent of how passes chunked the journal —
    /// a crash-replayed server lands on exactly the version the
    /// uninterrupted run reached. `/form` and capped-repair catch-up
    /// passes advance it by one.
    pub version: u64,
    /// How much of the durable journal this snapshot bakes in.
    pub progress: Progress,
    /// The sliding window of observed consumptions (`/v1/feedback`)
    /// behind the online quality metrics. Immutable like everything else
    /// in a snapshot: a background pass folds newly journaled feedback
    /// into a successor window; untouched passes share the `Arc`.
    pub feedback: Arc<OnlineEval>,
}

impl Snapshot {
    /// Name of the grouping every server is guaranteed to have.
    pub const DEFAULT_GROUPING: &'static str = "default";

    /// The `"default"` grouping (always present).
    pub fn default_grouping(&self) -> &Arc<GroupingState> {
        self.groupings
            .get(Self::DEFAULT_GROUPING)
            .expect("the default grouping always exists")
    }

    /// Looks up a grouping by name.
    pub fn grouping(&self, name: &str) -> Option<&Arc<GroupingState>> {
        self.groupings.get(name)
    }
}

/// Counters exposed by `/stats`; cheap relaxed atomics.
#[derive(Debug, Default)]
pub struct Stats {
    /// Ratings accepted into the pending journal.
    pub rates_accepted: AtomicU64,
    /// Ratings applied by background passes.
    pub rates_applied: AtomicU64,
    /// Background re-formation passes run.
    pub refresh_passes: AtomicU64,
    /// `/form` requests received.
    pub form_requests: AtomicU64,
    /// Actual formation runs executed on behalf of `/form` (≤ requests;
    /// the difference is requests answered from a coalesced batch).
    pub form_runs: AtomicU64,
    /// Grouping refreshes that patched a standing formation through its
    /// incremental former (dirty-bucket path). With several groupings
    /// registered, one background pass counts once per grouping.
    pub refresh_incremental: AtomicU64,
    /// Grouping refreshes that re-formed the whole population from
    /// scratch (counted per grouping, like `refresh_incremental`).
    pub refresh_cold: AtomicU64,
    /// Users admitted at serve time under [`gf_core::GrowthPolicy::Grow`] (includes
    /// the empty gap rows a sparse admission creates).
    pub users_admitted: AtomicU64,
    /// Items admitted at serve time under [`gf_core::GrowthPolicy::Grow`].
    pub items_admitted: AtomicU64,
    /// Rating-pass splits forced by an item admission crossing a
    /// grouping's top-`k` length (see the module docs).
    pub admission_splits: AtomicU64,
    /// WAL records appended by this process (0 when running volatile).
    pub wal_records: AtomicU64,
    /// Checkpoints written by this process (boot checkpoint included).
    pub checkpoints_written: AtomicU64,
    /// Snapshot version of the newest on-disk checkpoint (a gauge).
    pub checkpoint_version: AtomicU64,
    /// WAL records replayed during this process's recovery.
    pub recovery_replayed: AtomicU64,
    /// Torn-tail bytes dropped during this process's recovery.
    pub recovery_dropped_bytes: AtomicU64,
    /// Feedback events accepted into the pending journal (`/v1/feedback`).
    pub feedback_accepted: AtomicU64,
    /// Feedback events folded into the online window by background passes.
    pub feedback_applied: AtomicU64,
    /// TCP connections accepted by the transport (either `--net` mode).
    pub conns_accepted: AtomicU64,
    /// Connections closed by the idle/stall deadline (`--conn-timeout-ms`):
    /// socket timeouts on the blocking path, the timer wheel on epoll.
    pub conns_timed_out: AtomicU64,
}

/// A standing incremental former plus the per-grouping version its
/// bucket state is synced to; any formation it did not produce breaks
/// the lineage and forces a re-initialization on the next
/// incremental-eligible pass.
struct FormerSlot {
    former: IncrementalFormer,
    /// Must equal the grouping's [`GroupingState::version`] for the slot
    /// to be reusable. Rating passes bump every grouping's version, so a
    /// slot that missed a matrix change can never pass this check.
    synced_version: u64,
}

/// One accepted-but-unapplied journal record: a rating update or a
/// feedback consumption. Both kinds share the sequence space, so version
/// arithmetic stays chunking-invariant across mixed streams.
#[derive(Debug, Clone)]
enum PendingEntry {
    /// `POST /v1/rate` — patches the matrix on apply.
    Rating {
        seq: u64,
        user: u32,
        item: u32,
        score: f64,
    },
    /// `POST /v1/feedback` — folds into the online window on apply.
    Feedback {
        seq: u64,
        user: u32,
        item: u32,
        scope: Option<String>,
    },
}

impl PendingEntry {
    fn seq(&self) -> u64 {
        match self {
            PendingEntry::Rating { seq, .. } | PendingEntry::Feedback { seq, .. } => *seq,
        }
    }
}

/// The pending journal. The WAL handle lives *inside* this mutex on
/// purpose: an accepted rating appends to the log and enqueues under one
/// critical section, so on-disk journal order is exactly queue order —
/// the property that makes crash replay reproduce the uninterrupted run.
struct PendingQueue {
    /// Accepted records in journal order.
    entries: Vec<PendingEntry>,
    /// Sequence the next accepted record takes. Mirrors the WAL when one
    /// is attached; counts from 1 standalone so version arithmetic is
    /// identical in volatile and durable runs.
    next_seq: u64,
    /// Durable journal, when `--data-dir` is configured.
    wal: Option<Wal>,
    shutdown: bool,
}

/// A cached candidate list: the grouping version it was computed at,
/// and the sorted candidate item ids.
type CachedList = (u64, Arc<Vec<u32>>);

/// Per-group candidate lists (items **no** member has rated), computed
/// on demand through one shared epoch-marked [`CandidateEngine`] and
/// cached until the owning grouping's version moves — every background
/// pass bumps every grouping's version, so a hit is always consistent
/// with the snapshot that produced it.
struct CandidateCache {
    engine: CandidateEngine,
    /// Keyed by `(grouping name, group index)`.
    lists: BTreeMap<(String, usize), CachedList>,
}

/// One grouping frozen for checkpointing.
pub(crate) struct ExportedGrouping {
    pub name: String,
    pub version: u64,
    pub config: FormationConfig,
    pub formation: FormationResult,
    /// The standing former's exported bucket state, when its lineage is
    /// current for this grouping.
    pub former: Option<gf_core::FormerState>,
}

/// A consistent bundle frozen for checkpointing: the snapshot's pieces
/// plus each grouping's standing-former state when its lineage is
/// current. The matrix/prefs stay `Arc`-shared — the (expensive) deep
/// copy into an owned [`CheckpointState`] happens outside every lock.
pub(crate) struct ExportedState {
    pub version: u64,
    pub progress: Progress,
    pub matrix: Arc<RatingMatrix>,
    pub prefs: Arc<PrefIndex>,
    pub groupings: Vec<ExportedGrouping>,
    pub feedback: Arc<OnlineEval>,
}

/// The long-lived serving state shared by every connection handler.
pub struct ServeState {
    snapshot: RwLock<Arc<Snapshot>>,
    /// Serializes snapshot *builders* (background passes and `/form`
    /// runs) so concurrent writers cannot interleave lost updates; held
    /// across compute + install, never by readers.
    writer: Mutex<()>,
    pending: Mutex<PendingQueue>,
    wakeup: Condvar,
    batcher: Batcher,
    max_updates_per_pass: usize,
    /// Repair budget applied to every (re-)initialized standing former.
    max_swaps: Option<usize>,
    /// Standing incremental formers, one per grouping name (built lazily
    /// on a grouping's first incremental-eligible pass; only ever touched
    /// under `writer`).
    formers: Mutex<BTreeMap<String, FormerSlot>>,
    /// Raw-id translation (`--raw-ids`); absent means `/rate` ids are
    /// dense indices, set once at boot via
    /// [`ServeState::attach_raw_ids`].
    raw_ids: OnceLock<RawIdLayer>,
    /// Candidate-item engine plus its per-group result cache.
    candidates: Mutex<CandidateCache>,
    /// Counters for `/stats`.
    pub stats: Stats,
}

impl ServeState {
    /// Builds the initial snapshot (version 1) by running one full
    /// formation per registered grouping over `matrix` — the `"default"`
    /// grouping from [`ServeConfig::formation`] plus every
    /// [`ServeConfig::with_grouping`] entry — and wraps it all in a
    /// shareable state.
    pub fn new(matrix: RatingMatrix, cfg: ServeConfig) -> Result<Arc<ServeState>> {
        let matrix = Arc::new(matrix);
        let prefs = Arc::new(PrefIndex::build(&matrix));
        // Resolve the boot registry first (later entries override), then
        // form each named grouping exactly once.
        let mut configs: BTreeMap<String, FormationConfig> = BTreeMap::new();
        configs.insert(Snapshot::DEFAULT_GROUPING.to_string(), cfg.formation);
        for (name, fc) in &cfg.groupings {
            validate_grouping_name(name)?;
            configs.insert(name.clone(), *fc);
        }
        let mut groupings = BTreeMap::new();
        for (name, fc) in configs {
            let formation = build_formation(&matrix, &prefs, &fc)?;
            let assignment = formation.grouping.assignment(matrix.n_users());
            groupings.insert(
                name,
                Arc::new(GroupingState {
                    config: fc,
                    formation,
                    assignment,
                    version: 1,
                }),
            );
        }
        let snapshot = Snapshot {
            matrix,
            prefs,
            groupings,
            version: 1,
            progress: Progress::default(),
            feedback: Arc::new(OnlineEval::new(cfg.feedback_window)),
        };
        Ok(Arc::new(ServeState {
            snapshot: RwLock::new(Arc::new(snapshot)),
            writer: Mutex::new(()),
            pending: Mutex::new(PendingQueue {
                entries: Vec::new(),
                next_seq: 1,
                wal: None,
                shutdown: false,
            }),
            wakeup: Condvar::new(),
            batcher: Batcher::new(cfg.batch_window),
            max_updates_per_pass: cfg.max_updates_per_pass.max(1),
            max_swaps: cfg.max_swaps,
            formers: Mutex::new(BTreeMap::new()),
            raw_ids: OnceLock::new(),
            candidates: Mutex::new(CandidateCache {
                engine: CandidateEngine::new(),
                lists: BTreeMap::new(),
            }),
            stats: Stats::default(),
        }))
    }

    /// Rebuilds serving state from a decoded checkpoint: every
    /// checkpointed grouping is restored verbatim (no re-formation) at
    /// its checkpointed version, and any grouping whose checkpoint
    /// carried a standing-former state is imported warm so its first
    /// post-restart pass stays on the dirty-bucket path. Non-formation
    /// knobs (batch window, pass bounds, repair budget) come from `cfg`;
    /// the *formation* configurations are the checkpoint's — they are
    /// part of the durable state a `/form` may have changed since boot
    /// flags were last read.
    pub fn restore_from(ck: CheckpointState, cfg: ServeConfig) -> Result<Arc<ServeState>> {
        let matrix = Arc::new(ck.matrix);
        let prefs = Arc::new(ck.prefs);
        let progress = Progress {
            wal_seq: ck.wal_seq,
            applied: ck.applied,
            users_admitted: ck.users_admitted,
            items_admitted: ck.items_admitted,
        };
        let mut groupings = BTreeMap::new();
        let mut formers = BTreeMap::new();
        for g in ck.groupings {
            if let Some(state) = g.former {
                let mut former = IncrementalFormer::import_state(&matrix, g.config, &state)?;
                if let Some(max_swaps) = cfg.max_swaps {
                    former = former.with_max_swaps(max_swaps);
                }
                formers.insert(
                    g.name.clone(),
                    FormerSlot {
                        former,
                        synced_version: g.version,
                    },
                );
            }
            let assignment = g.formation.grouping.assignment(matrix.n_users());
            groupings.insert(
                g.name,
                Arc::new(GroupingState {
                    config: g.config,
                    formation: g.formation,
                    assignment,
                    version: g.version,
                }),
            );
        }
        if !groupings.contains_key(Snapshot::DEFAULT_GROUPING) {
            return Err(GfError::Persist(
                "checkpoint carries no \"default\" grouping".into(),
            ));
        }
        // The checkpointed window re-caps to this boot's configured
        // capacity: shrinking drops the oldest events, growing keeps
        // them all; the cumulative observed count carries over either
        // way.
        let feedback = Arc::new(OnlineEval::from_parts(
            cfg.feedback_window,
            ck.feedback.events().to_vec(),
            ck.feedback.observed_total(),
        ));
        let feedback_observed = feedback.observed_total();
        let snapshot = Snapshot {
            matrix,
            prefs,
            groupings,
            version: ck.snapshot_version,
            progress,
            feedback,
        };
        let stats = Stats::default();
        // Seed the process-local counters so `/stats` stays meaningful
        // across restarts: everything the checkpoint baked in counts as
        // accepted and applied by this lineage.
        stats.rates_accepted.store(ck.applied, Ordering::Relaxed);
        stats.rates_applied.store(ck.applied, Ordering::Relaxed);
        stats
            .users_admitted
            .store(ck.users_admitted, Ordering::Relaxed);
        stats
            .items_admitted
            .store(ck.items_admitted, Ordering::Relaxed);
        stats
            .feedback_accepted
            .store(feedback_observed, Ordering::Relaxed);
        stats
            .feedback_applied
            .store(feedback_observed, Ordering::Relaxed);
        Ok(Arc::new(ServeState {
            snapshot: RwLock::new(Arc::new(snapshot)),
            writer: Mutex::new(()),
            pending: Mutex::new(PendingQueue {
                entries: Vec::new(),
                next_seq: ck.wal_seq + 1,
                wal: None,
                shutdown: false,
            }),
            wakeup: Condvar::new(),
            batcher: Batcher::new(cfg.batch_window),
            max_updates_per_pass: cfg.max_updates_per_pass.max(1),
            max_swaps: cfg.max_swaps,
            formers: Mutex::new(formers),
            raw_ids: OnceLock::new(),
            candidates: Mutex::new(CandidateCache {
                engine: CandidateEngine::new(),
                lists: BTreeMap::new(),
            }),
            stats,
        }))
    }

    /// The current snapshot. Readers hold the lock only long enough to
    /// clone the `Arc`; everything after is lock-free.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"))
    }

    /// Number of journal records waiting for the background pass.
    pub fn pending_len(&self) -> usize {
        self.pending
            .lock()
            .expect("pending lock poisoned")
            .entries
            .len()
    }

    /// Accepts one rating update into the pending journal.
    ///
    /// The update is validated against the current snapshot's dimensions,
    /// the **default grouping's** growth policy and the rating scale so
    /// malformed requests fail fast; it becomes visible to queries only
    /// once a background pass installs the next snapshot (call
    /// [`ServeState::flush`] to force that synchronously). Under
    /// [`gf_core::GrowthPolicy::Grow`], a never-seen user or item within the
    /// caps is **admitted**: the journal entry carries the grown id and
    /// the applying pass extends the matrix, preference index and every
    /// registered grouping to cover it — no restart. Returns the number
    /// of updates now pending.
    pub fn rate(&self, user: u32, item: u32, score: f64) -> Result<usize> {
        let snap = self.snapshot();
        let matrix = &snap.matrix;
        // The matrix is shared by all groupings, so exactly one growth
        // policy can govern admissions: the default grouping's.
        let growth = snap.default_grouping().config.growth;
        growth.admit_user(user, matrix.n_users())?;
        growth.admit_item(item, matrix.n_items())?;
        if !score.is_finite() {
            return Err(GfError::NonFiniteScore { user, item });
        }
        if !matrix.scale().contains(score) {
            return Err(GfError::ScaleViolation { user, item, score });
        }
        let mut q = self.pending.lock().expect("pending lock poisoned");
        // Journal before acknowledging: when a WAL is attached, the record
        // must be on disk (per the sync mode) before this call can return
        // Ok. A failed append rejects the rating — nothing is enqueued, so
        // the durable log never lags the accepted set.
        let journaled = q.wal.is_some();
        let seq = match q.wal.as_mut() {
            Some(wal) => wal.append(&[(user, item, score)]).map_err(GfError::from)?,
            None => q.next_seq,
        };
        q.next_seq = seq + 1;
        q.entries.push(PendingEntry::Rating {
            seq,
            user,
            item,
            score,
        });
        let depth = q.entries.len();
        drop(q);
        self.stats.rates_accepted.fetch_add(1, Ordering::Relaxed);
        if journaled {
            self.stats.wal_records.fetch_add(1, Ordering::Relaxed);
        }
        self.wakeup.notify_one();
        Ok(depth)
    }

    /// Accepts one feedback event (`user` consumed `item`) into the
    /// pending journal, optionally scoped to one named grouping.
    ///
    /// Feedback never admits: both ids must already be covered by the
    /// current snapshot, and a `scope` must name a registered grouping.
    /// Like a rating, the event is journaled through the WAL **before**
    /// acknowledgment and becomes visible (in the online quality window,
    /// `/v1/stats`) once a background pass folds it in. Returns the
    /// number of records now pending.
    pub fn feedback(&self, user: u32, item: u32, scope: Option<&str>) -> Result<usize> {
        let snap = self.snapshot();
        let matrix = &snap.matrix;
        if user >= matrix.n_users() {
            return Err(GfError::UserOutOfRange {
                user,
                n_users: matrix.n_users(),
            });
        }
        if item >= matrix.n_items() {
            return Err(GfError::ItemOutOfRange {
                item,
                n_items: matrix.n_items(),
            });
        }
        if let Some(name) = scope {
            if snap.grouping(name).is_none() {
                return Err(GfError::InvalidGrouping(format!(
                    "no grouping named {name:?}"
                )));
            }
        }
        let mut q = self.pending.lock().expect("pending lock poisoned");
        let journaled = q.wal.is_some();
        let seq = match q.wal.as_mut() {
            Some(wal) => wal
                .append_feedback(user, item, scope)
                .map_err(GfError::from)?,
            None => q.next_seq,
        };
        q.next_seq = seq + 1;
        q.entries.push(PendingEntry::Feedback {
            seq,
            user,
            item,
            scope: scope.map(String::from),
        });
        let depth = q.entries.len();
        drop(q);
        self.stats.feedback_accepted.fetch_add(1, Ordering::Relaxed);
        if journaled {
            self.stats.wal_records.fetch_add(1, Ordering::Relaxed);
        }
        self.wakeup.notify_one();
        Ok(depth)
    }

    /// [`ServeState::feedback`] for original dataset ids. Resolution is a
    /// pure lookup ([`GrowthPolicy::Fixed`]): a raw id the table has
    /// never seen fails like an out-of-range dense id — consumptions of
    /// unknown users or items never intern anything.
    pub fn feedback_raw(&self, raw_user: u64, raw_item: u64, scope: Option<&str>) -> Result<usize> {
        let layer = self.raw_ids().ok_or_else(|| {
            GfError::InvalidGrouping("raw-id mode is not enabled (start with --raw-ids)".into())
        })?;
        let (user, item) = layer.resolve(raw_user, raw_item, GrowthPolicy::Fixed)?;
        self.feedback(user, item, scope)
    }

    /// Candidate items for one group of a named grouping: the items **no**
    /// member has rated, sorted ascending. Computed on the snapshot's
    /// shared matrix through the epoch-marked [`CandidateEngine`] and
    /// cached per `(grouping, group)` until the grouping's version moves
    /// (every background pass moves every grouping's version, so a cache
    /// hit always matches the matrix it is filtered against). Returns
    /// `None` for an unknown grouping or group index.
    pub fn candidate_items(
        &self,
        snap: &Snapshot,
        name: &str,
        group: usize,
    ) -> Option<Arc<Vec<u32>>> {
        let g = snap.grouping(name)?;
        let members = &g.formation.grouping.groups.get(group)?.members;
        let mut cache = self.candidates.lock().expect("candidate lock poisoned");
        let key = (name.to_string(), group);
        if let Some((version, list)) = cache.lists.get(&key) {
            if *version == g.version {
                return Some(Arc::clone(list));
            }
        }
        let list = Arc::new(
            cache
                .engine
                .candidates_for_group(&snap.matrix, members)
                .expect("group members are valid rows of the snapshot's own matrix"),
        );
        // Evict entries no current grouping vouches for, so stale lists
        // from re-formed or dropped groupings never accumulate.
        let groupings = &snap.groupings;
        cache
            .lists
            .retain(|(n, _), (v, _)| groupings.get(n.as_str()).is_some_and(|g| *v == g.version));
        cache.lists.insert(key, (g.version, Arc::clone(&list)));
        Some(list)
    }

    /// Installs the raw-id translation layer (`--raw-ids`). Call once at
    /// boot, before serving; a second call is ignored (the first layer
    /// wins, matching `OnceLock` semantics).
    pub fn attach_raw_ids(&self, layer: RawIdLayer) {
        let _ = self.raw_ids.set(layer);
    }

    /// The raw-id layer, when serving original dataset ids.
    pub fn raw_ids(&self) -> Option<&RawIdLayer> {
        self.raw_ids.get()
    }

    /// [`ServeState::rate`] for original dataset ids: resolves
    /// `raw_user`/`raw_item` through the attached [`RawIdLayer`] (interning
    /// never-seen raw ids under the default grouping's growth caps — the
    /// interned dense index is exactly the row the admission pipeline
    /// grows to) and enqueues the dense-id update. The WAL therefore
    /// journals dense ids only; replay never needs the table.
    pub fn rate_raw(&self, raw_user: u64, raw_item: u64, score: f64) -> Result<usize> {
        let layer = self.raw_ids().ok_or_else(|| {
            GfError::InvalidGrouping("raw-id mode is not enabled (start with --raw-ids)".into())
        })?;
        let growth = self.snapshot().default_grouping().config.growth;
        let (user, item) = layer.resolve(raw_user, raw_item, growth)?;
        self.rate(user, item, score)
    }

    /// Re-enqueues one journal record during recovery, preserving its
    /// original sequence number. The WAL must not be attached yet (replay
    /// must not re-append its own input); validation is deferred to the
    /// applying pass, which re-checks growth caps exactly as the original
    /// accept did.
    pub(crate) fn enqueue_replayed(&self, rec: &WalRecord) -> Result<()> {
        let entry = match &rec.payload {
            WalPayload::Ratings(updates) => {
                if updates.len() != 1 {
                    return Err(GfError::Persist(format!(
                        "wal record {} carries {} updates; gf-serve journals exactly one per record",
                        rec.seq,
                        updates.len()
                    )));
                }
                let (user, item, score) = updates[0];
                PendingEntry::Rating {
                    seq: rec.seq,
                    user,
                    item,
                    score,
                }
            }
            WalPayload::Feedback { user, item, scope } => PendingEntry::Feedback {
                seq: rec.seq,
                user: *user,
                item: *item,
                scope: scope.clone(),
            },
        };
        let counter = match &entry {
            PendingEntry::Rating { .. } => &self.stats.rates_accepted,
            PendingEntry::Feedback { .. } => &self.stats.feedback_accepted,
        };
        let mut q = self.pending.lock().expect("pending lock poisoned");
        q.next_seq = rec.seq + 1;
        q.entries.push(entry);
        drop(q);
        counter.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Attaches the durable journal. Call *after* replay has been
    /// enqueued and flushed: from here on every accepted rating appends
    /// to `wal` before acknowledgment, continuing its sequence.
    pub(crate) fn attach_wal(&self, wal: Wal) {
        let mut q = self.pending.lock().expect("pending lock poisoned");
        q.next_seq = wal.next_seq();
        q.wal = Some(wal);
    }

    /// Runs `f` against the attached WAL (pruning, forced syncs). Returns
    /// `None` when running volatile.
    pub(crate) fn with_wal<R>(
        &self,
        f: impl FnOnce(&mut Wal) -> gf_persist::Result<R>,
    ) -> Option<gf_persist::Result<R>> {
        let mut q = self.pending.lock().expect("pending lock poisoned");
        q.wal.as_mut().map(f)
    }

    /// Runs one bounded background pass: drains up to
    /// `max_updates_per_pass` pending updates, patches the matrix and the
    /// affected users' preference lists in one batch each, then re-forms
    /// **every registered grouping** under its own configuration —
    /// incrementally (dirty buckets only) or cold, per
    /// [`gf_core::RefreshMode`] and the dirty-set size — and installs the
    /// result. Returns how many updates were applied (0 when nothing was
    /// pending).
    pub fn process_pending(&self) -> Result<usize> {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let mut chunk: Vec<PendingEntry> = {
            let mut q = self.pending.lock().expect("pending lock poisoned");
            let take = q.entries.len().min(self.max_updates_per_pass);
            q.entries.drain(..take).collect()
        };
        if chunk.is_empty() {
            return Ok(0);
        }
        let current = self.snapshot();
        // Admission-aware split (module docs): if an item admission in
        // this chunk pushes the catalogue past some grouping's `k`, apply
        // only the prefix through the last admitting record now and push
        // the user-rating tail back to the journal's front. The crossing
        // grouping pays its unavoidable cold rebuild on the short prefix;
        // the tail then rides the re-warmed former incrementally. Safe
        // because versioning is chunking-invariant. Only rating records
        // can admit; feedback riding in the split tail keeps its place in
        // journal order.
        let base_items = current.matrix.n_items();
        let mut max_item = base_items;
        let mut last_growth = 0usize;
        for (idx, e) in chunk.iter().enumerate() {
            if let PendingEntry::Rating { item, .. } = e {
                if *item >= max_item {
                    max_item = item + 1;
                    last_growth = idx + 1;
                }
            }
        }
        let crosses = max_item > base_items
            && current
                .groupings
                .values()
                .any(|g| g.config.k.min(base_items as usize) != g.config.k.min(max_item as usize));
        if crosses && last_growth < chunk.len() {
            let tail = chunk.split_off(last_growth);
            let mut q = self.pending.lock().expect("pending lock poisoned");
            q.entries.splice(0..0, tail);
            drop(q);
            self.stats.admission_splits.fetch_add(1, Ordering::Relaxed);
            self.wakeup.notify_one();
        }
        let updates: Vec<(u32, u32, f64)> = chunk
            .iter()
            .filter_map(|e| match e {
                PendingEntry::Rating {
                    user, item, score, ..
                } => Some((*user, *item, *score)),
                PendingEntry::Feedback { .. } => None,
            })
            .collect();
        let n_feedback = (chunk.len() - updates.len()) as u64;
        // Fold newly journaled feedback into the successor window in
        // journal order; rating-only chunks share the window `Arc`.
        let feedback = if n_feedback == 0 {
            Arc::clone(&current.feedback)
        } else {
            let mut window = (*current.feedback).clone();
            for e in &chunk {
                if let PendingEntry::Feedback {
                    user, item, scope, ..
                } = e
                {
                    window = window.observe(FeedbackEvent {
                        user: *user,
                        item: *item,
                        scope: scope.clone(),
                    });
                }
            }
            Arc::new(window)
        };
        let next_version = current.version + chunk.len() as u64;
        let last_seq = chunk.last().expect("chunk non-empty").seq();

        if updates.is_empty() {
            // Feedback-only chunk: the ratings, preference lists and every
            // formation are untouched, so the successor shares them
            // wholesale and skips the refresh machinery. Grouping versions
            // still advance to the chunk-end version — exactly what a
            // rating pass over the same records would do — so versioning
            // (and the crash digest) stays chunking-invariant; standing
            // formers with current lineage re-sync to follow.
            let mut formers = self.formers.lock().expect("formers lock poisoned");
            formers.retain(|name, _| current.groupings.contains_key(name));
            let mut groupings = BTreeMap::new();
            for (name, g) in &current.groupings {
                if let Some(slot) = formers.get_mut(name) {
                    if slot.synced_version == g.version && slot.former.config() == &g.config {
                        slot.synced_version = next_version;
                    }
                }
                groupings.insert(
                    name.clone(),
                    Arc::new(GroupingState {
                        config: g.config,
                        formation: g.formation.clone(),
                        assignment: g.assignment.clone(),
                        version: next_version,
                    }),
                );
            }
            drop(formers);
            self.install(Snapshot {
                matrix: Arc::clone(&current.matrix),
                prefs: Arc::clone(&current.prefs),
                groupings,
                version: next_version,
                progress: Progress {
                    wal_seq: last_seq,
                    ..current.progress
                },
                feedback,
            });
            self.stats
                .feedback_applied
                .fetch_add(n_feedback, Ordering::Relaxed);
            return Ok(chunk.len());
        }
        // Build the patched successors in one storage pass each (no
        // intermediate clone — the old matrix/prefs stay live for
        // concurrent readers), re-sorting each dirty user's preference
        // list exactly once: the incremental counterpart of a cold
        // `PrefIndex::build`. Journal entries validated under
        // `GrowthPolicy::Grow` may carry grown ids; the successor build
        // admits them here (appending rows is O(new rows), not O(nnz), on
        // top of the usual one-pass splice). Every grouping shares the
        // one patched matrix/prefs pair.
        let growth = current.default_grouping().config.growth;
        let (matrix, outcomes) = current.matrix.with_upserts_under(&updates, growth)?;
        let matrix = Arc::new(matrix);
        let admitted_users = u64::from(matrix.n_users() - current.matrix.n_users());
        let admitted_items = u64::from(matrix.n_items() - current.matrix.n_items());
        let deltas: Vec<RatingDelta> = updates
            .iter()
            .zip(outcomes)
            .map(|(&(u, i, s), o)| RatingDelta::from_upsert(u, i, s, o))
            .collect();
        let mut dirty: Vec<u32> = updates.iter().map(|&(u, _, _)| u).collect();
        dirty.sort_unstable();
        dirty.dedup();
        let prefs = Arc::new(current.prefs.patched(&matrix, &dirty));

        // One version per journal record (of either kind), not per pass:
        // the version (and progress) a journal history yields is then
        // invariant under pass chunking, which is what lets a
        // crash-replayed server assert bit-for-bit equality with the
        // uninterrupted run. `applied` counts rating updates only — the
        // feedback ledger is the window's own cumulative count.
        let progress = Progress {
            wal_seq: last_seq,
            applied: current.progress.applied + updates.len() as u64,
            users_admitted: current.progress.users_admitted + admitted_users,
            items_admitted: current.progress.items_admitted + admitted_items,
        };
        let n_users = matrix.n_users() as usize;
        let mut formers = self.formers.lock().expect("formers lock poisoned");
        // Slots for groupings that were dropped from the registry have no
        // owner left to re-sync them; reclaim the memory.
        formers.retain(|name, _| current.groupings.contains_key(name));
        let mut groupings = BTreeMap::new();
        for (name, g) in &current.groupings {
            let cfg = g.config;
            // An item admission that crossed this grouping's top-`k`
            // length rewrites every signature; incremental repair would
            // degenerate, so take the cold rebuild deliberately.
            let k_crossed = cfg.k.min(base_items as usize) != cfg.k.min(matrix.n_items() as usize);
            let incremental = !k_crossed && cfg.refresh.use_incremental(dirty.len(), n_users);
            let formation = if incremental {
                let reusable = formers
                    .get(name)
                    .is_some_and(|s| s.synced_version == g.version && s.former.config() == &cfg);
                if reusable {
                    let slot = formers.get_mut(name).expect("checked above");
                    slot.former.refresh(&matrix, &prefs, &deltas)?;
                    slot.synced_version = next_version;
                } else {
                    // (Re-)initialize this grouping's standing former on
                    // the already patched matrix; subsequent passes patch
                    // it in place.
                    let mut former = IncrementalFormer::new(&matrix, &prefs, cfg)?;
                    if let Some(max_swaps) = self.max_swaps {
                        former = former.with_max_swaps(max_swaps);
                    }
                    formers.insert(
                        name.clone(),
                        FormerSlot {
                            former,
                            synced_version: next_version,
                        },
                    );
                }
                self.stats
                    .refresh_incremental
                    .fetch_add(1, Ordering::Relaxed);
                formers
                    .get(name)
                    .expect("installed above")
                    .former
                    .result()
                    .clone()
            } else {
                // A cold pass leaves this grouping's standing former
                // behind the matrix; drop it so the next incremental pass
                // re-initializes.
                formers.remove(name);
                self.stats.refresh_cold.fetch_add(1, Ordering::Relaxed);
                build_formation(&matrix, &prefs, &cfg)?
            };
            let assignment = formation.grouping.assignment(matrix.n_users());
            groupings.insert(
                name.clone(),
                Arc::new(GroupingState {
                    config: cfg,
                    formation,
                    assignment,
                    version: next_version,
                }),
            );
        }
        drop(formers);
        self.install(Snapshot {
            matrix,
            prefs,
            groupings,
            version: next_version,
            progress,
            feedback,
        });
        // Counter order matters for observers: `refresh_passes` last, so
        // `refresh_incremental + refresh_cold >= refresh_passes` holds in
        // every interleaving a `/stats` read can see. Admission counters
        // increment after the install for the same reason: once visible,
        // the snapshot's `n_users`/`n_items` already cover them.
        if admitted_users > 0 {
            self.stats
                .users_admitted
                .fetch_add(admitted_users, Ordering::Relaxed);
        }
        if admitted_items > 0 {
            self.stats
                .items_admitted
                .fetch_add(admitted_items, Ordering::Relaxed);
        }
        self.stats
            .rates_applied
            .fetch_add(updates.len() as u64, Ordering::Relaxed);
        if n_feedback > 0 {
            self.stats
                .feedback_applied
                .fetch_add(n_feedback, Ordering::Relaxed);
        }
        self.stats.refresh_passes.fetch_add(1, Ordering::Relaxed);
        Ok(chunk.len())
    }

    /// One catch-up pass for a capped repair budget
    /// ([`ServeConfig::with_max_swaps`]): when the journal is empty but
    /// some grouping's standing former had to defer bucket admissions on
    /// its last refresh ([`IncrementalFormer::selection_lag`] > 0), an
    /// empty refresh admits the next budget's worth for every such
    /// grouping and installs the improved snapshot. Returns whether a
    /// pass ran (callers loop until `false`). With an unbounded budget
    /// (the default) the lag is always 0 and this is a no-op.
    pub fn catch_up(&self) -> Result<bool> {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        if !self
            .pending
            .lock()
            .expect("pending lock poisoned")
            .entries
            .is_empty()
        {
            return Ok(false); // real updates take priority; they catch up too
        }
        let current = self.snapshot();
        let mut formers = self.formers.lock().expect("formers lock poisoned");
        let mut improved: Vec<(String, FormationResult)> = Vec::new();
        for (name, s) in formers.iter_mut() {
            let Some(g) = current.groupings.get(name) else {
                continue;
            };
            if s.synced_version != g.version
                || s.former.config() != &g.config
                || s.former.selection_lag() <= 0.0
            {
                continue;
            }
            let lag_before = s.former.selection_lag();
            s.former.refresh(&current.matrix, &current.prefs, &[])?;
            if s.former.selection_lag() >= lag_before {
                // A zero budget (or a tie) makes no progress; installing
                // the identical formation forever would spin. Keep the
                // bounded snapshot — the quality bound still holds.
                continue;
            }
            improved.push((name.clone(), s.former.result().clone()));
        }
        if improved.is_empty() {
            return Ok(false);
        }
        let next_version = current.version + 1;
        let mut groupings = current.groupings.clone();
        for (name, formation) in improved {
            formers
                .get_mut(&name)
                .expect("iterated above")
                .synced_version = next_version;
            let g = &current.groupings[&name];
            let assignment = formation.grouping.assignment(current.matrix.n_users());
            groupings.insert(
                name,
                Arc::new(GroupingState {
                    config: g.config,
                    formation,
                    assignment,
                    version: next_version,
                }),
            );
            self.stats
                .refresh_incremental
                .fetch_add(1, Ordering::Relaxed);
        }
        drop(formers);
        self.install(Snapshot {
            matrix: Arc::clone(&current.matrix),
            prefs: Arc::clone(&current.prefs),
            groupings,
            version: next_version,
            progress: current.progress,
            feedback: Arc::clone(&current.feedback),
        });
        self.stats.refresh_passes.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Synchronously applies *all* pending updates (possibly over several
    /// bounded passes), then drains any capped-repair catch-up. After
    /// `flush` returns, queries see every rating accepted before the call
    /// and every capped former has converged as far as its budget allows.
    pub fn flush(&self) -> Result<()> {
        while self.process_pending()? > 0 {}
        while self.catch_up()? {}
        Ok(())
    }

    /// Re-forms the `"default"` grouping under `cfg` — the single-tenant
    /// [`ServeState::form_named`].
    pub fn form(&self, cfg: FormationConfig) -> Result<BatchOutcome> {
        self.form_named(Snapshot::DEFAULT_GROUPING, cfg)
    }

    /// Re-forms (or first registers) the named grouping under `cfg` over
    /// the current matrix and installs the result, leaving every other
    /// grouping untouched. A brand-new name registers a new grouping —
    /// sharing the one matrix and preference index by `Arc` — and
    /// subsequent rating passes refresh it like any other.
    ///
    /// Concurrent `form_named` calls for the **same grouping and
    /// configuration** arriving within the batching window are coalesced
    /// into a single formation run whose snapshot all of them return.
    pub fn form_named(&self, name: &str, cfg: FormationConfig) -> Result<BatchOutcome> {
        validate_grouping_name(name)?;
        self.stats.form_requests.fetch_add(1, Ordering::Relaxed);
        self.batcher.submit(name, cfg, || {
            self.stats.form_runs.fetch_add(1, Ordering::Relaxed);
            let _writer = self.writer.lock().expect("writer lock poisoned");
            let current = self.snapshot();
            // The ratings are unchanged: the new snapshot shares them.
            let formation = build_formation(&current.matrix, &current.prefs, &cfg)?;
            let assignment = formation.grouping.assignment(current.matrix.n_users());
            let next_version = current.version + 1;
            let mut groupings = current.groupings.clone();
            let prev = groupings.insert(
                name.to_string(),
                Arc::new(GroupingState {
                    config: cfg,
                    formation,
                    assignment,
                    version: next_version,
                }),
            );
            let shared = self.install(Snapshot {
                matrix: Arc::clone(&current.matrix),
                prefs: Arc::clone(&current.prefs),
                groupings,
                version: next_version,
                progress: current.progress,
                feedback: Arc::clone(&current.feedback),
            });
            // A same-configuration `/form` reproduces exactly the greedy
            // formation the grouping's standing former maintains, so its
            // lineage is still valid — re-sync it instead of letting the
            // next pass rebuild the former cold. (A capped former
            // mid-repair is excluded: its bounded formation differs from
            // the fresh one.)
            let mut formers = self.formers.lock().expect("formers lock poisoned");
            if let (Some(s), Some(prev)) = (formers.get_mut(name), prev.as_ref()) {
                if s.synced_version == prev.version
                    && s.former.config() == &cfg
                    && s.former.selection_lag() <= 0.0
                {
                    s.synced_version = next_version;
                }
            }
            drop(formers);
            Ok(shared)
        })
    }

    /// Parks until rating updates arrive (or shutdown), then runs bounded
    /// passes. The HTTP server spawns this on a dedicated thread; tests
    /// can drive [`ServeState::process_pending`] directly instead.
    pub fn run_refresh_worker(&self) {
        loop {
            {
                let mut q = self.pending.lock().expect("pending lock poisoned");
                while q.entries.is_empty() && !q.shutdown {
                    q = self.wakeup.wait(q).expect("pending lock poisoned");
                }
                if q.shutdown && q.entries.is_empty() {
                    return;
                }
            }
            // A failure here means a validated update stopped applying —
            // only possible through a serve-layer bug; surface loudly.
            self.process_pending().expect("background pass failed");
            // Once the journal drains, let a capped repair budget converge
            // before parking again (no-op under the default unbounded
            // budget).
            if self.pending_len() == 0 {
                while self.catch_up().expect("catch-up pass failed") {}
            }
        }
    }

    /// Asks the refresh worker to exit once the journal drains, pushing
    /// any interval-mode WAL tail to disk on the way (best effort — a
    /// sync failure at shutdown has no one left to reject).
    pub fn shutdown(&self) {
        let mut q = self.pending.lock().expect("pending lock poisoned");
        q.shutdown = true;
        if let Some(wal) = q.wal.as_mut() {
            let _ = wal.sync();
        }
        drop(q);
        self.wakeup.notify_all();
    }

    /// Freezes a consistent bundle for the checkpointer. Taking `writer`
    /// briefly excludes concurrent installs, so each exported former
    /// state (when its lineage is current) matches its exported grouping
    /// version; the deep copy into owned checkpoint structures happens in
    /// the caller, outside every lock.
    pub(crate) fn export_for_checkpoint(&self) -> ExportedState {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let snap = self.snapshot();
        let formers = self.formers.lock().expect("formers lock poisoned");
        let groupings = snap
            .groupings
            .iter()
            .map(|(name, g)| ExportedGrouping {
                name: name.clone(),
                version: g.version,
                config: g.config,
                formation: g.formation.clone(),
                former: formers
                    .get(name)
                    .filter(|s| s.synced_version == g.version && s.former.config() == &g.config)
                    .map(|s| s.former.export_state()),
            })
            .collect();
        drop(formers);
        ExportedState {
            version: snap.version,
            progress: snap.progress,
            matrix: Arc::clone(&snap.matrix),
            prefs: Arc::clone(&snap.prefs),
            groupings,
            feedback: Arc::clone(&snap.feedback),
        }
    }

    /// An order-sensitive FNV-1a fingerprint of the serving state:
    /// version, journal progress, every stored rating, the online
    /// feedback window (cumulative count plus every windowed event —
    /// but not its configured capacity, which is a process knob, not
    /// journal state), and — per named grouping, in name order — its
    /// name, version, configuration and full formation (membership,
    /// top-k lists, satisfaction bits). Two servers that applied the
    /// same journal — one uninterrupted, one crash-restored — produce
    /// the same digest; the crash harness asserts exactly that.
    pub fn digest(&self) -> u64 {
        let snap = self.snapshot();
        let mut d = StateDigest::new();
        d.u64(snap.version)
            .u64(snap.progress.wal_seq)
            .u64(snap.progress.applied)
            .u64(snap.progress.users_admitted)
            .u64(snap.progress.items_admitted)
            .matrix(&snap.matrix);
        d.u64(snap.feedback.observed_total());
        for ev in snap.feedback.events() {
            d.u64(u64::from(ev.user)).u64(u64::from(ev.item));
            match &ev.scope {
                Some(s) => d.u64(1).bytes(s.as_bytes()),
                None => d.u64(0),
            };
        }
        for (name, g) in &snap.groupings {
            d.bytes(name.as_bytes())
                .u64(g.version)
                .bytes(format!("{:?}", g.config).as_bytes())
                .formation(&g.formation);
        }
        d.finish()
    }

    /// The fingerprint of one named grouping (name, version,
    /// configuration, formation) — the per-grouping entries of
    /// `/digest`. Cheaper than [`ServeState::digest`] (no matrix walk);
    /// two servers that agree on [`ServeState::digest`] agree on every
    /// per-grouping digest, and a disagreement localizes the divergent
    /// grouping.
    pub fn grouping_digest(&self, name: &str) -> Option<u64> {
        let snap = self.snapshot();
        let g = snap.groupings.get(name)?;
        let mut d = StateDigest::new();
        d.bytes(name.as_bytes())
            .u64(g.version)
            .bytes(format!("{:?}", g.config).as_bytes())
            .formation(&g.formation);
        Some(d.finish())
    }

    fn install(&self, snapshot: Snapshot) -> Arc<Snapshot> {
        let shared = Arc::new(snapshot);
        let mut slot = self.snapshot.write().expect("snapshot lock poisoned");
        *slot = Arc::clone(&shared);
        shared
    }
}

/// Runs a formation over `matrix` under one grouping's configuration.
///
/// The engine follows the refresh mode so that every formation a serving
/// instance installs for a grouping has the same shape: under
/// [`RefreshMode::Cold`](gf_core::RefreshMode) — where the incremental
/// path never runs — this is the population-sharded [`ShardedFormer`];
/// under `Auto`/`Incremental` it is the plain [`GreedyFormer`] (Step-1
/// bucket building still threaded per `cfg.n_threads`), the exact
/// formation the [`IncrementalFormer`] maintains. Without this split, a
/// multi-worker configuration would flip users between a sharded and an
/// unsharded grouping depending on which path the last pass took.
fn build_formation(
    matrix: &RatingMatrix,
    prefs: &PrefIndex,
    cfg: &FormationConfig,
) -> Result<FormationResult> {
    match cfg.refresh {
        gf_core::RefreshMode::Cold => ShardedFormer::new().form(matrix, prefs, cfg),
        gf_core::RefreshMode::Auto | gf_core::RefreshMode::Incremental => {
            gf_core::GreedyFormer::new().form(matrix, prefs, cfg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_core::{Aggregation, RatingScale, Semantics};

    fn matrix(n: u32, m: u32) -> RatingMatrix {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|u| {
                (0..m)
                    .map(|i| 1.0 + ((u * 7 + i * 3 + u * i) % 5) as f64)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap()
    }

    fn state(n: u32, m: u32, ell: usize) -> Arc<ServeState> {
        let cfg = ServeConfig::new(FormationConfig::new(
            Semantics::LeastMisery,
            Aggregation::Min,
            2,
            ell,
        ))
        .with_batch_window(Duration::ZERO);
        ServeState::new(matrix(n, m), cfg).unwrap()
    }

    /// Three differently-configured groupings over one matrix.
    fn multi_state(n: u32, m: u32) -> Arc<ServeState> {
        let cfg = ServeConfig::new(FormationConfig::new(
            Semantics::LeastMisery,
            Aggregation::Min,
            2,
            3,
        ))
        .with_grouping(
            "av",
            FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 2, 4),
        )
        .with_grouping(
            "cons",
            FormationConfig::new(Semantics::Consensus { lambda: 0.5 }, Aggregation::Min, 2, 3),
        )
        .with_batch_window(Duration::ZERO);
        ServeState::new(matrix(n, m), cfg).unwrap()
    }

    #[test]
    fn initial_snapshot_covers_every_user() {
        let s = state(12, 5, 3);
        let snap = s.snapshot();
        assert_eq!(snap.version, 1);
        let g = snap.default_grouping();
        assert!(g.assignment.iter().all(Option::is_some));
        g.formation.grouping.validate(12, 3).unwrap();
    }

    #[test]
    fn rate_validates_before_enqueue() {
        let s = state(4, 4, 2);
        assert!(matches!(
            s.rate(99, 0, 3.0),
            Err(GfError::UserOutOfRange { .. })
        ));
        assert!(matches!(
            s.rate(0, 99, 3.0),
            Err(GfError::ItemOutOfRange { .. })
        ));
        assert!(matches!(
            s.rate(0, 0, 9.0),
            Err(GfError::ScaleViolation { .. })
        ));
        assert!(matches!(
            s.rate(0, 0, f64::NAN),
            Err(GfError::NonFiniteScore { .. })
        ));
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn rate_is_deferred_until_flush() {
        let s = state(6, 4, 2);
        let before = s.snapshot();
        assert_eq!(s.rate(0, 1, 5.0).unwrap(), 1);
        assert_eq!(s.pending_len(), 1);
        // Queries still see the old snapshot.
        assert_eq!(s.snapshot().version, before.version);
        s.flush().unwrap();
        let after = s.snapshot();
        assert_eq!(after.version, before.version + 1);
        assert_eq!(after.matrix.get(0, 1), Some(5.0));
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn bounded_passes_split_large_batches() {
        let cfg = ServeConfig::new(FormationConfig::new(
            Semantics::AggregateVoting,
            Aggregation::Sum,
            2,
            2,
        ))
        .with_max_updates_per_pass(2);
        let s = ServeState::new(matrix(5, 5), cfg).unwrap();
        for i in 0..5 {
            s.rate(i % 5, i % 5, 4.0).unwrap();
        }
        assert_eq!(s.process_pending().unwrap(), 2);
        assert_eq!(s.pending_len(), 3);
        s.flush().unwrap();
        assert_eq!(s.pending_len(), 0);
        assert_eq!(s.stats.rates_applied.load(Ordering::Relaxed), 5);
        assert!(s.stats.refresh_passes.load(Ordering::Relaxed) >= 3);
    }

    #[test]
    fn form_installs_new_config() {
        let s = state(10, 6, 2);
        let new_cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 3, 4);
        let outcome = s.form(new_cfg).unwrap();
        assert_eq!(outcome.snapshot.default_grouping().config, new_cfg);
        assert_eq!(s.snapshot().version, 2);
        // Background passes now re-form under the new config.
        s.rate(0, 0, 1.0).unwrap();
        s.flush().unwrap();
        assert_eq!(s.snapshot().default_grouping().config, new_cfg);
    }

    #[test]
    fn auto_mode_takes_incremental_path_for_small_batches() {
        let s = state(10, 5, 3);
        s.rate(1, 1, 5.0).unwrap();
        s.flush().unwrap();
        s.rate(2, 0, 4.0).unwrap();
        s.rate(7, 3, 1.0).unwrap();
        s.flush().unwrap();
        // 10 users, auto threshold max(64, n/8): every pass is incremental.
        assert_eq!(s.stats.refresh_incremental.load(Ordering::Relaxed), 2);
        assert_eq!(s.stats.refresh_cold.load(Ordering::Relaxed), 0);
        // And the snapshots match a cold rebuild over the same ratings.
        let snap = s.snapshot();
        let g = snap.default_grouping();
        let cold = ServeState::new(
            snap.matrix.as_ref().clone(),
            ServeConfig::new(g.config).with_batch_window(Duration::ZERO),
        )
        .unwrap();
        assert_eq!(g.formation, cold.snapshot().default_grouping().formation);
    }

    #[test]
    fn growth_rides_the_incremental_path() {
        let cfg = ServeConfig::new(
            FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 3)
                .with_growth(gf_core::GrowthPolicy::unbounded()),
        )
        .with_batch_window(Duration::ZERO);
        let s = ServeState::new(matrix(10, 5), cfg).unwrap();
        s.rate(0, 0, 5.0).unwrap();
        s.flush().unwrap(); // standing former initialized
        s.rate(13, 6, 4.0).unwrap(); // admission lands on the warm former
        s.flush().unwrap();
        assert_eq!(s.stats.refresh_incremental.load(Ordering::Relaxed), 2);
        assert_eq!(s.stats.users_admitted.load(Ordering::Relaxed), 4);
        assert_eq!(s.stats.items_admitted.load(Ordering::Relaxed), 2);
        let snap = s.snapshot();
        let g = snap.default_grouping();
        assert_eq!(snap.matrix.n_users(), 14);
        assert_eq!(g.assignment.len(), 14);
        assert!(g.assignment.iter().all(Option::is_some));
        // Equal to a cold boot over the grown universe.
        let cold = ServeState::new(
            snap.matrix.as_ref().clone(),
            ServeConfig::new(g.config).with_batch_window(Duration::ZERO),
        )
        .unwrap();
        assert_eq!(g.formation, cold.snapshot().default_grouping().formation);
    }

    #[test]
    fn cold_mode_never_touches_the_former() {
        let cfg = ServeConfig::new(
            FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 3)
                .with_refresh(gf_core::RefreshMode::Cold),
        )
        .with_batch_window(Duration::ZERO);
        let s = ServeState::new(matrix(9, 5), cfg).unwrap();
        s.rate(0, 0, 5.0).unwrap();
        s.flush().unwrap();
        assert_eq!(s.stats.refresh_incremental.load(Ordering::Relaxed), 0);
        assert_eq!(s.stats.refresh_cold.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn form_breaks_former_lineage_but_refreshes_stay_correct() {
        let s = state(12, 6, 3);
        s.rate(0, 0, 5.0).unwrap();
        s.flush().unwrap(); // former initialized + synced
        let new_cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 2, 4);
        s.form(new_cfg).unwrap(); // a formation the former did not produce
        s.rate(3, 3, 2.0).unwrap();
        s.flush().unwrap(); // must re-init under the new config
        assert_eq!(s.stats.refresh_incremental.load(Ordering::Relaxed), 2);
        let snap = s.snapshot();
        let g = snap.default_grouping();
        assert_eq!(g.config, new_cfg);
        let cold = ServeState::new(
            snap.matrix.as_ref().clone(),
            ServeConfig::new(new_cfg).with_batch_window(Duration::ZERO),
        )
        .unwrap();
        assert_eq!(g.formation, cold.snapshot().default_grouping().formation);
    }

    #[test]
    fn worker_drains_and_shuts_down() {
        let s = state(8, 4, 2);
        let worker = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || s.run_refresh_worker())
        };
        s.rate(3, 2, 5.0).unwrap();
        // The worker should pick the update up without an explicit flush.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while s.snapshot().matrix.get(3, 2) != Some(5.0) {
            assert!(std::time::Instant::now() < deadline, "worker never applied");
            std::thread::sleep(Duration::from_millis(1));
        }
        s.shutdown();
        worker.join().unwrap();
    }

    // ---- named-grouping registry ----------------------------------------

    #[test]
    fn boot_registers_every_named_grouping_over_one_matrix() {
        let s = multi_state(12, 6);
        let snap = s.snapshot();
        assert_eq!(snap.groupings.len(), 3);
        for name in ["default", "av", "cons"] {
            let g = snap.grouping(name).unwrap();
            assert_eq!(g.version, 1);
            assert!(g.assignment.iter().all(Option::is_some));
        }
        assert_eq!(
            snap.grouping("av").unwrap().config.semantics,
            Semantics::AggregateVoting
        );
    }

    #[test]
    fn rating_pass_refreshes_every_grouping_and_each_matches_its_cold_rebuild() {
        let s = multi_state(12, 6);
        s.rate(1, 1, 5.0).unwrap();
        s.rate(7, 2, 1.0).unwrap();
        s.flush().unwrap();
        let snap = s.snapshot();
        // One pass, two records: global version 1 -> 3, all groupings on it.
        assert_eq!(snap.version, 3);
        for (name, g) in &snap.groupings {
            assert_eq!(g.version, 3, "{name}");
            let cold = ServeState::new(
                snap.matrix.as_ref().clone(),
                ServeConfig::new(g.config).with_batch_window(Duration::ZERO),
            )
            .unwrap();
            assert_eq!(
                g.formation,
                cold.snapshot().default_grouping().formation,
                "grouping {name} diverged from its own cold rebuild"
            );
        }
        // Every grouping refreshed incrementally (small dirty set).
        assert_eq!(s.stats.refresh_incremental.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn form_named_registers_and_shares_the_matrix() {
        let s = state(10, 6, 3);
        let before = s.snapshot();
        let cfg = FormationConfig::new(Semantics::LeaderWeighted, Aggregation::Min, 2, 4);
        let outcome = s.form_named("ldr", cfg).unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.version, before.version + 1);
        // One matrix, one preference index — shared by Arc, not copied.
        assert!(Arc::ptr_eq(&before.matrix, &snap.matrix));
        assert!(Arc::ptr_eq(&before.prefs, &snap.prefs));
        // Untouched groupings are shared wholesale.
        assert!(Arc::ptr_eq(
            before.default_grouping(),
            snap.default_grouping()
        ));
        let g = snap.grouping("ldr").unwrap();
        assert_eq!(g.config, cfg);
        assert_eq!(g.version, snap.version);
        assert_eq!(outcome.snapshot.version, snap.version);
        // The default grouping's formation (and version) did not move.
        assert_eq!(snap.default_grouping().version, before.version);
    }

    #[test]
    fn form_named_rejects_bad_names() {
        let s = state(6, 4, 2);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 2);
        assert!(s.form_named("", cfg).is_err());
        assert!(s.form_named("has space", cfg).is_err());
        assert!(s.form_named("has/slash", cfg).is_err());
        assert!(s.form_named("ok-name_1.x", cfg).is_ok());
    }

    #[test]
    fn new_grouping_rides_subsequent_rating_passes() {
        let s = state(10, 5, 3);
        s.form_named(
            "av",
            FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 2, 4),
        )
        .unwrap();
        s.rate(2, 2, 5.0).unwrap();
        s.flush().unwrap();
        let snap = s.snapshot();
        let g = snap.grouping("av").unwrap();
        assert_eq!(g.version, snap.version);
        let cold = ServeState::new(
            snap.matrix.as_ref().clone(),
            ServeConfig::new(g.config).with_batch_window(Duration::ZERO),
        )
        .unwrap();
        assert_eq!(g.formation, cold.snapshot().default_grouping().formation);
    }

    #[test]
    fn grouping_digests_localize_changes() {
        let s = multi_state(10, 5);
        let d_default = s.grouping_digest("default").unwrap();
        let d_av = s.grouping_digest("av").unwrap();
        assert!(s.grouping_digest("nope").is_none());
        // Re-forming one grouping moves its digest, not the others'.
        s.form_named(
            "av",
            FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 3, 2),
        )
        .unwrap();
        assert_eq!(s.grouping_digest("default").unwrap(), d_default);
        assert_ne!(s.grouping_digest("av").unwrap(), d_av);
    }

    #[test]
    fn feedback_validates_defers_and_folds_into_the_window() {
        let s = multi_state(10, 5);
        assert!(matches!(
            s.feedback(99, 0, None),
            Err(GfError::UserOutOfRange { .. })
        ));
        assert!(matches!(
            s.feedback(0, 99, None),
            Err(GfError::ItemOutOfRange { .. })
        ));
        assert!(matches!(
            s.feedback(0, 0, Some("nope")),
            Err(GfError::InvalidGrouping(_))
        ));
        assert_eq!(s.pending_len(), 0);
        let before = s.snapshot();
        assert_eq!(s.feedback(3, 2, Some("av")).unwrap(), 1);
        assert_eq!(s.feedback(4, 1, None).unwrap(), 2);
        // Not visible until a pass folds it in.
        assert!(s.snapshot().feedback.is_empty());
        s.flush().unwrap();
        let after = s.snapshot();
        // Two records, one version each; the matrix and prefs are shared
        // untouched, but every grouping's version follows the snapshot.
        assert_eq!(after.version, before.version + 2);
        assert!(Arc::ptr_eq(&before.matrix, &after.matrix));
        assert!(Arc::ptr_eq(&before.prefs, &after.prefs));
        for g in after.groupings.values() {
            assert_eq!(g.version, after.version);
        }
        assert_eq!(after.feedback.len(), 2);
        assert_eq!(after.feedback.observed_total(), 2);
        assert_eq!(s.stats.feedback_applied.load(Ordering::Relaxed), 2);
        // A feedback-only pass re-syncs warm formers instead of breaking
        // their lineage: the next rating still refreshes incrementally.
        s.rate(0, 0, 5.0).unwrap();
        s.flush().unwrap();
        s.rate(1, 1, 4.0).unwrap();
        s.feedback(1, 1, None).unwrap();
        s.flush().unwrap();
        assert_eq!(s.stats.refresh_cold.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn feedback_digest_is_chunking_invariant() {
        let run = |max_per_pass: usize| {
            let cfg = ServeConfig::new(FormationConfig::new(
                Semantics::LeastMisery,
                Aggregation::Min,
                2,
                3,
            ))
            .with_batch_window(Duration::ZERO)
            .with_max_updates_per_pass(max_per_pass);
            let s = ServeState::new(matrix(10, 5), cfg).unwrap();
            for step in 0..12u32 {
                if step % 3 == 2 {
                    s.feedback(step % 10, step % 5, None).unwrap();
                } else {
                    s.rate(step % 10, step % 5, 1.0 + f64::from(step % 5))
                        .unwrap();
                }
                if max_per_pass == 1 {
                    s.flush().unwrap(); // apply one record at a time
                }
            }
            s.flush().unwrap();
            s.digest()
        };
        assert_eq!(run(1), run(1024));
    }

    #[test]
    fn candidate_items_match_brute_force_and_cache_by_version() {
        let s = state(10, 6, 3);
        let snap = s.snapshot();
        let g = snap.default_grouping();
        for (gi, group) in g.formation.grouping.groups.iter().enumerate() {
            let got = s.candidate_items(&snap, "default", gi).unwrap();
            let want = gf_core::brute_force_candidates(&snap.matrix, &group.members).unwrap();
            assert_eq!(*got, want);
            // A second query at the same version returns the cached Arc.
            let again = s.candidate_items(&snap, "default", gi).unwrap();
            assert!(Arc::ptr_eq(&got, &again));
        }
        assert!(s.candidate_items(&snap, "nope", 0).is_none());
        assert!(s.candidate_items(&snap, "default", 99).is_none());
    }

    #[test]
    fn admission_split_defers_the_user_tail() {
        // k = 4 over a 3-item catalogue: the first admission that pushes
        // the catalogue to 4+ items crosses the top-k edge.
        let cfg = ServeConfig::new(
            FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 4, 3)
                .with_growth(gf_core::GrowthPolicy::unbounded()),
        )
        .with_batch_window(Duration::ZERO);
        let s = ServeState::new(matrix(10, 3), cfg).unwrap();
        s.rate(0, 0, 5.0).unwrap();
        s.flush().unwrap(); // warm former on the 3-item catalogue
        s.rate(1, 3, 4.0).unwrap(); // admits item 3 -> crosses k = 4
        s.rate(2, 0, 2.0).unwrap(); // plain user rating after the admission
        s.rate(3, 1, 1.0).unwrap();
        // One bounded pass drains the admission prefix only.
        assert_eq!(s.process_pending().unwrap(), 1);
        assert_eq!(s.stats.admission_splits.load(Ordering::Relaxed), 1);
        assert_eq!(s.pending_len(), 2);
        assert_eq!(s.snapshot().matrix.n_items(), 4);
        s.flush().unwrap();
        // The deferred tail rode the re-warmed former incrementally.
        assert_eq!(s.pending_len(), 0);
        let snap = s.snapshot();
        // Versioning stayed chunking-invariant: 1 (boot) + 4 records.
        assert_eq!(snap.version, 5);
        let g = snap.default_grouping();
        let cold = ServeState::new(
            snap.matrix.as_ref().clone(),
            ServeConfig::new(g.config).with_batch_window(Duration::ZERO),
        )
        .unwrap();
        assert_eq!(g.formation, cold.snapshot().default_grouping().formation);
    }
}
