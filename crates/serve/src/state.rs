//! Shared serving state: immutable snapshots, incremental rating updates
//! and the bounded background re-formation pass.
//!
//! ## Consistency model
//!
//! All queries (`/group`, `/recommend`, `/health`) read one [`Snapshot`] —
//! an immutable, `Arc`-shared bundle of the rating matrix, the preference
//! index, the current [`FormationResult`] and the user→group assignment.
//! Readers clone the `Arc` under a briefly-held read lock and then work
//! lock-free; writers build the next snapshot off to the side and swap it
//! in with a briefly-held write lock. A query therefore always sees an
//! internally consistent formation, never a half-applied update.
//!
//! Rating updates (`/rate`) are **eventually consistent**: they enqueue
//! into a pending journal and return immediately; the background
//! re-formation pass (one bounded batch of updates per pass, see
//! [`ServeConfig::max_updates_per_pass`]) patches the matrix
//! ([`RatingMatrix::upsert_batch`]) and the affected users' preference
//! lists ([`PrefIndex::patch_users`]) and then re-forms one of two ways,
//! chosen per pass by [`gf_core::RefreshMode`] from the dirty-set size:
//!
//! * **incremental** — a standing [`gf_core::IncrementalFormer`] moves
//!   only the dirty users between their greedy buckets and splices the
//!   result back into the grouping, making refresh cost proportional to
//!   the update batch;
//! * **cold** — a full re-formation over the whole population (also the
//!   fallback whenever the standing former's lineage broke, e.g. after a
//!   `/form` or a cold pass).
//!
//! Both paths are **test-enforced** to converge to exactly the snapshot a
//! cold rebuild over the same ratings produces (`tests/serve_props.rs`);
//! `/stats` reports which path each pass took. So that the two paths
//! agree on grouping *shape* under any thread count, every snapshot an
//! `Auto`/`Incremental` instance installs comes from the plain greedy
//! (Step-1 threaded); the population-sharded former serves
//! [`RefreshMode::Cold`](gf_core::RefreshMode) instances, where the
//! incremental path never runs.

use crate::batch::{BatchOutcome, Batcher};
use gf_core::{
    FormationConfig, FormationResult, GfError, GroupFormer, IncrementalFormer, PrefIndex,
    RatingDelta, RatingMatrix, Result, ShardedFormer,
};
use gf_persist::wal::{Wal, WalRecord};
use gf_persist::{CheckpointState, StateDigest};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

/// Everything that parameterises a serving instance.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Formation configuration used for the initial formation and for
    /// background re-formation (until a `/form` request overrides it).
    pub formation: FormationConfig,
    /// How long a `/form` leader waits for concurrent same-configuration
    /// requests to join its batch before running.
    pub batch_window: Duration,
    /// Upper bound on how many rating updates one background re-formation
    /// pass applies; more pending updates simply take more passes.
    pub max_updates_per_pass: usize,
    /// Repair-pass budget for the standing incremental former
    /// ([`IncrementalFormer::with_max_swaps`]): `None` (the default) keeps
    /// the unbounded, exactly-cold repair; `Some(n)` caps how many buckets
    /// one refresh may admit, bounding worst-case refresh latency at the
    /// documented quality bound. A capped server still converges once
    /// updates quiesce — the background worker runs catch-up passes over
    /// an empty journal until the deferred admissions drain.
    pub max_swaps: Option<usize>,
}

impl ServeConfig {
    /// Defaults: a 5 ms batching window, at most 1024 updates per pass and
    /// an unbounded repair budget.
    pub fn new(formation: FormationConfig) -> Self {
        ServeConfig {
            formation,
            batch_window: Duration::from_millis(5),
            max_updates_per_pass: 1024,
            max_swaps: None,
        }
    }

    /// Overrides the `/form` batching window.
    pub fn with_batch_window(mut self, window: Duration) -> Self {
        self.batch_window = window;
        self
    }

    /// Overrides the per-pass update bound (clamped to at least 1).
    pub fn with_max_updates_per_pass(mut self, max: usize) -> Self {
        self.max_updates_per_pass = max.max(1);
        self
    }

    /// Caps the incremental former's per-refresh repair budget (see
    /// [`ServeConfig::max_swaps`]).
    pub fn with_max_swaps(mut self, max_swaps: usize) -> Self {
        self.max_swaps = Some(max_swaps);
        self
    }
}

/// Durable progress carried by every snapshot: how much of the journal
/// the snapshot's state bakes in. A checkpoint freezes these alongside
/// the matrix so a warm restart knows exactly which WAL records are
/// already applied (`seq <= wal_seq`) and which to replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Progress {
    /// Highest journal sequence number applied into this snapshot
    /// (0 before any rating lands).
    pub wal_seq: u64,
    /// Total rating updates applied since the serving lineage began
    /// (survives restarts, unlike the process-local `/stats` counters).
    pub applied: u64,
    /// Users admitted at serve time under [`gf_core::GrowthPolicy::Grow`],
    /// cumulative across restarts.
    pub users_admitted: u64,
    /// Items admitted at serve time, cumulative across restarts.
    pub items_admitted: u64,
}

/// One immutable, internally consistent view of the serving state.
///
/// The matrix and preference index are `Arc`-shared because snapshot
/// succession never mutates them: a background pass *builds* the patched
/// successors ([`RatingMatrix::with_upserts`], [`PrefIndex::patched`])
/// while the old structures stay live for concurrent readers, and a
/// `/form` (which changes only the formation) shares them wholesale.
/// Cloning ~O(nnz) rating storage per refresh used to dominate the
/// 50k-user refresh pass; the `Arc` succession removes it entirely.
#[derive(Debug)]
pub struct Snapshot {
    /// The rating matrix this formation was computed on.
    pub matrix: Arc<RatingMatrix>,
    /// Preference index built on (or incrementally patched to match)
    /// `matrix`.
    pub prefs: Arc<PrefIndex>,
    /// The formation configuration the groups were formed under.
    pub config: FormationConfig,
    /// The current formation.
    pub formation: FormationResult,
    /// `assignment[u]` = index into `formation.grouping.groups`, `None`
    /// for users the formation did not cover (impossible for valid
    /// formations, kept as `Option` for defense in depth).
    pub assignment: Vec<Option<usize>>,
    /// Monotonic snapshot version. A background pass advances it by one
    /// **per applied journal record**, so the version a given rating
    /// history produces is independent of how passes chunked the journal —
    /// a crash-replayed server lands on exactly the version the
    /// uninterrupted run reached. `/form` and capped-repair catch-up
    /// passes advance it by one.
    pub version: u64,
    /// How much of the durable journal this snapshot bakes in.
    pub progress: Progress,
}

/// Counters exposed by `/stats`; cheap relaxed atomics.
#[derive(Debug, Default)]
pub struct Stats {
    /// Ratings accepted into the pending journal.
    pub rates_accepted: AtomicU64,
    /// Ratings applied by background passes.
    pub rates_applied: AtomicU64,
    /// Background re-formation passes run.
    pub refresh_passes: AtomicU64,
    /// `/form` requests received.
    pub form_requests: AtomicU64,
    /// Actual formation runs executed on behalf of `/form` (≤ requests;
    /// the difference is requests answered from a coalesced batch).
    pub form_runs: AtomicU64,
    /// Background passes that patched the standing formation through the
    /// incremental former (dirty-bucket path).
    pub refresh_incremental: AtomicU64,
    /// Background passes that re-formed the whole population from scratch.
    pub refresh_cold: AtomicU64,
    /// Users admitted at serve time under [`gf_core::GrowthPolicy::Grow`] (includes
    /// the empty gap rows a sparse admission creates).
    pub users_admitted: AtomicU64,
    /// Items admitted at serve time under [`gf_core::GrowthPolicy::Grow`].
    pub items_admitted: AtomicU64,
    /// WAL records appended by this process (0 when running volatile).
    pub wal_records: AtomicU64,
    /// Checkpoints written by this process (boot checkpoint included).
    pub checkpoints_written: AtomicU64,
    /// Snapshot version of the newest on-disk checkpoint (a gauge).
    pub checkpoint_version: AtomicU64,
    /// WAL records replayed during this process's recovery.
    pub recovery_replayed: AtomicU64,
    /// Torn-tail bytes dropped during this process's recovery.
    pub recovery_dropped_bytes: AtomicU64,
}

/// The standing incremental former plus the snapshot version its bucket
/// state is synced to; any snapshot it did not produce breaks the lineage
/// and forces a re-initialization on the next incremental-eligible pass.
struct FormerSlot {
    former: IncrementalFormer,
    synced_version: u64,
}

/// The pending journal. The WAL handle lives *inside* this mutex on
/// purpose: an accepted rating appends to the log and enqueues under one
/// critical section, so on-disk journal order is exactly queue order —
/// the property that makes crash replay reproduce the uninterrupted run.
struct PendingQueue {
    /// `(seq, user, item, score)` in journal order.
    updates: Vec<(u64, u32, u32, f64)>,
    /// Sequence the next accepted rating takes. Mirrors the WAL when one
    /// is attached; counts from 1 standalone so version arithmetic is
    /// identical in volatile and durable runs.
    next_seq: u64,
    /// Durable journal, when `--data-dir` is configured.
    wal: Option<Wal>,
    shutdown: bool,
}

/// A consistent bundle frozen for checkpointing: the snapshot's pieces
/// plus the standing former's exported bucket state when its lineage is
/// current. The matrix/prefs stay `Arc`-shared — the (expensive) deep
/// copy into an owned [`CheckpointState`] happens outside every lock.
pub(crate) struct ExportedState {
    pub version: u64,
    pub progress: Progress,
    pub config: FormationConfig,
    pub matrix: Arc<RatingMatrix>,
    pub prefs: Arc<PrefIndex>,
    pub formation: FormationResult,
    pub former: Option<gf_core::FormerState>,
}

/// The long-lived serving state shared by every connection handler.
pub struct ServeState {
    snapshot: RwLock<Arc<Snapshot>>,
    /// Serializes snapshot *builders* (background passes and `/form`
    /// runs) so concurrent writers cannot interleave lost updates; held
    /// across compute + install, never by readers.
    writer: Mutex<()>,
    pending: Mutex<PendingQueue>,
    wakeup: Condvar,
    batcher: Batcher,
    max_updates_per_pass: usize,
    /// Repair budget applied to every (re-)initialized standing former.
    max_swaps: Option<usize>,
    /// Standing incremental former (built lazily on the first
    /// incremental-eligible pass; only ever touched under `writer`).
    former: Mutex<Option<FormerSlot>>,
    /// Counters for `/stats`.
    pub stats: Stats,
}

impl ServeState {
    /// Builds the initial snapshot (version 1) by running a full formation
    /// over `matrix` and wraps it in a shareable state.
    pub fn new(matrix: RatingMatrix, cfg: ServeConfig) -> Result<Arc<ServeState>> {
        let prefs = PrefIndex::build(&matrix);
        let snapshot = build_snapshot(
            Arc::new(matrix),
            Arc::new(prefs),
            cfg.formation,
            Progress::default(),
            1,
        )?;
        Ok(Arc::new(ServeState {
            snapshot: RwLock::new(Arc::new(snapshot)),
            writer: Mutex::new(()),
            pending: Mutex::new(PendingQueue {
                updates: Vec::new(),
                next_seq: 1,
                wal: None,
                shutdown: false,
            }),
            wakeup: Condvar::new(),
            batcher: Batcher::new(cfg.batch_window),
            max_updates_per_pass: cfg.max_updates_per_pass.max(1),
            max_swaps: cfg.max_swaps,
            former: Mutex::new(None),
            stats: Stats::default(),
        }))
    }

    /// Rebuilds serving state from a decoded checkpoint: the snapshot is
    /// restored verbatim (no re-formation) at its checkpointed version and
    /// progress, and the standing incremental former — when the checkpoint
    /// carried one — is imported warm so the first post-restart pass stays
    /// on the dirty-bucket path. Non-formation knobs (batch window, pass
    /// bounds, repair budget) come from `cfg`; the *formation*
    /// configuration is the checkpoint's — it is part of the durable state
    /// a `/form` may have changed since boot flags were last read.
    pub fn restore_from(ck: CheckpointState, cfg: ServeConfig) -> Result<Arc<ServeState>> {
        let matrix = Arc::new(ck.matrix);
        let prefs = Arc::new(ck.prefs);
        let progress = Progress {
            wal_seq: ck.wal_seq,
            applied: ck.applied,
            users_admitted: ck.users_admitted,
            items_admitted: ck.items_admitted,
        };
        let snapshot = snapshot_with_formation(
            Arc::clone(&matrix),
            Arc::clone(&prefs),
            ck.config,
            ck.formation,
            progress,
            ck.snapshot_version,
        );
        let former = match ck.former {
            Some(state) => {
                let mut former = IncrementalFormer::import_state(&matrix, ck.config, &state)?;
                if let Some(max_swaps) = cfg.max_swaps {
                    former = former.with_max_swaps(max_swaps);
                }
                Some(FormerSlot {
                    former,
                    synced_version: ck.snapshot_version,
                })
            }
            None => None,
        };
        let stats = Stats::default();
        // Seed the process-local counters so `/stats` stays meaningful
        // across restarts: everything the checkpoint baked in counts as
        // accepted and applied by this lineage.
        stats.rates_accepted.store(ck.applied, Ordering::Relaxed);
        stats.rates_applied.store(ck.applied, Ordering::Relaxed);
        stats
            .users_admitted
            .store(ck.users_admitted, Ordering::Relaxed);
        stats
            .items_admitted
            .store(ck.items_admitted, Ordering::Relaxed);
        Ok(Arc::new(ServeState {
            snapshot: RwLock::new(Arc::new(snapshot)),
            writer: Mutex::new(()),
            pending: Mutex::new(PendingQueue {
                updates: Vec::new(),
                next_seq: ck.wal_seq + 1,
                wal: None,
                shutdown: false,
            }),
            wakeup: Condvar::new(),
            batcher: Batcher::new(cfg.batch_window),
            max_updates_per_pass: cfg.max_updates_per_pass.max(1),
            max_swaps: cfg.max_swaps,
            former: Mutex::new(former),
            stats,
        }))
    }

    /// The current snapshot. Readers hold the lock only long enough to
    /// clone the `Arc`; everything after is lock-free.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"))
    }

    /// Number of rating updates waiting for the background pass.
    pub fn pending_len(&self) -> usize {
        self.pending
            .lock()
            .expect("pending lock poisoned")
            .updates
            .len()
    }

    /// Accepts one rating update into the pending journal.
    ///
    /// The update is validated against the current snapshot's dimensions,
    /// growth policy and scale so malformed requests fail fast; it becomes
    /// visible to queries only once a background pass installs the next
    /// snapshot (call [`ServeState::flush`] to force that synchronously).
    /// Under [`gf_core::GrowthPolicy::Grow`], a never-seen user or item within the
    /// caps is **admitted**: the journal entry carries the grown id and
    /// the applying pass extends the matrix, preference index and standing
    /// formation to cover it — no restart. Returns the number of updates
    /// now pending.
    pub fn rate(&self, user: u32, item: u32, score: f64) -> Result<usize> {
        let snap = self.snapshot();
        let matrix = &snap.matrix;
        let growth = snap.config.growth;
        growth.admit_user(user, matrix.n_users())?;
        growth.admit_item(item, matrix.n_items())?;
        if !score.is_finite() {
            return Err(GfError::NonFiniteScore { user, item });
        }
        if !matrix.scale().contains(score) {
            return Err(GfError::ScaleViolation { user, item, score });
        }
        let mut q = self.pending.lock().expect("pending lock poisoned");
        // Journal before acknowledging: when a WAL is attached, the record
        // must be on disk (per the sync mode) before this call can return
        // Ok. A failed append rejects the rating — nothing is enqueued, so
        // the durable log never lags the accepted set.
        let journaled = q.wal.is_some();
        let seq = match q.wal.as_mut() {
            Some(wal) => wal.append(&[(user, item, score)]).map_err(GfError::from)?,
            None => q.next_seq,
        };
        q.next_seq = seq + 1;
        q.updates.push((seq, user, item, score));
        let depth = q.updates.len();
        drop(q);
        self.stats.rates_accepted.fetch_add(1, Ordering::Relaxed);
        if journaled {
            self.stats.wal_records.fetch_add(1, Ordering::Relaxed);
        }
        self.wakeup.notify_one();
        Ok(depth)
    }

    /// Re-enqueues one journal record during recovery, preserving its
    /// original sequence number. The WAL must not be attached yet (replay
    /// must not re-append its own input); validation is deferred to the
    /// applying pass, which re-checks growth caps exactly as the original
    /// accept did.
    pub(crate) fn enqueue_replayed(&self, rec: &WalRecord) -> Result<()> {
        if rec.updates.len() != 1 {
            return Err(GfError::Persist(format!(
                "wal record {} carries {} updates; gf-serve journals exactly one per record",
                rec.seq,
                rec.updates.len()
            )));
        }
        let (user, item, score) = rec.updates[0];
        let mut q = self.pending.lock().expect("pending lock poisoned");
        q.updates.push((rec.seq, user, item, score));
        q.next_seq = rec.seq + 1;
        drop(q);
        self.stats.rates_accepted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Attaches the durable journal. Call *after* replay has been
    /// enqueued and flushed: from here on every accepted rating appends
    /// to `wal` before acknowledgment, continuing its sequence.
    pub(crate) fn attach_wal(&self, wal: Wal) {
        let mut q = self.pending.lock().expect("pending lock poisoned");
        q.next_seq = wal.next_seq();
        q.wal = Some(wal);
    }

    /// Runs `f` against the attached WAL (pruning, forced syncs). Returns
    /// `None` when running volatile.
    pub(crate) fn with_wal<R>(
        &self,
        f: impl FnOnce(&mut Wal) -> gf_persist::Result<R>,
    ) -> Option<gf_persist::Result<R>> {
        let mut q = self.pending.lock().expect("pending lock poisoned");
        q.wal.as_mut().map(f)
    }

    /// Runs one bounded background pass: drains up to
    /// `max_updates_per_pass` pending updates, patches the matrix and the
    /// affected users' preference lists in one batch each, re-forms under
    /// the current configuration — incrementally (dirty buckets only) or
    /// cold, per [`gf_core::RefreshMode`] and the dirty-set size — and
    /// installs the result. Returns how many updates were applied (0 when
    /// nothing was pending).
    pub fn process_pending(&self) -> Result<usize> {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let chunk: Vec<(u64, u32, u32, f64)> = {
            let mut q = self.pending.lock().expect("pending lock poisoned");
            let take = q.updates.len().min(self.max_updates_per_pass);
            q.updates.drain(..take).collect()
        };
        if chunk.is_empty() {
            return Ok(0);
        }
        let updates: Vec<(u32, u32, f64)> = chunk.iter().map(|&(_, u, i, s)| (u, i, s)).collect();
        let current = self.snapshot();
        // Build the patched successors in one storage pass each (no
        // intermediate clone — the old matrix/prefs stay live for
        // concurrent readers), re-sorting each dirty user's preference
        // list exactly once: the incremental counterpart of a cold
        // `PrefIndex::build`. Journal entries validated under
        // `GrowthPolicy::Grow` may carry grown ids; the successor build
        // admits them here (appending rows is O(new rows), not O(nnz), on
        // top of the usual one-pass splice).
        let (matrix, outcomes) = current
            .matrix
            .with_upserts_under(&updates, current.config.growth)?;
        let matrix = Arc::new(matrix);
        let admitted_users = u64::from(matrix.n_users() - current.matrix.n_users());
        let admitted_items = u64::from(matrix.n_items() - current.matrix.n_items());
        let deltas: Vec<RatingDelta> = updates
            .iter()
            .zip(outcomes)
            .map(|(&(u, i, s), o)| RatingDelta::from_upsert(u, i, s, o))
            .collect();
        let mut dirty: Vec<u32> = updates.iter().map(|&(u, _, _)| u).collect();
        dirty.sort_unstable();
        dirty.dedup();
        let prefs = Arc::new(current.prefs.patched(&matrix, &dirty));

        let incremental = current
            .config
            .refresh
            .use_incremental(dirty.len(), matrix.n_users() as usize);
        // One version per journal record, not per pass: the version (and
        // progress) a rating history yields is then invariant under pass
        // chunking, which is what lets a crash-replayed server assert
        // bit-for-bit equality with the uninterrupted run.
        let next_version = current.version + chunk.len() as u64;
        let progress = Progress {
            wal_seq: chunk.last().expect("chunk non-empty").0,
            applied: current.progress.applied + chunk.len() as u64,
            users_admitted: current.progress.users_admitted + admitted_users,
            items_admitted: current.progress.items_admitted + admitted_items,
        };
        let snapshot = if incremental {
            let mut slot = self.former.lock().expect("former lock poisoned");
            let reusable = slot.as_ref().is_some_and(|s| {
                s.synced_version == current.version && s.former.config() == &current.config
            });
            if reusable {
                let slot = slot.as_mut().expect("checked above");
                slot.former.refresh(&matrix, &prefs, &deltas)?;
                slot.synced_version = next_version;
            } else {
                // (Re-)initialize the standing former on the already
                // patched matrix; subsequent passes patch it in place.
                let mut former = IncrementalFormer::new(&matrix, &prefs, current.config)?;
                if let Some(max_swaps) = self.max_swaps {
                    former = former.with_max_swaps(max_swaps);
                }
                *slot = Some(FormerSlot {
                    former,
                    synced_version: next_version,
                });
            }
            let formation = slot
                .as_ref()
                .expect("former installed above")
                .former
                .result()
                .clone();
            self.stats
                .refresh_incremental
                .fetch_add(1, Ordering::Relaxed);
            snapshot_with_formation(
                matrix,
                prefs,
                current.config,
                formation,
                progress,
                next_version,
            )
        } else {
            // A cold pass leaves the standing former behind the matrix;
            // drop it so the next incremental pass re-initializes.
            *self.former.lock().expect("former lock poisoned") = None;
            self.stats.refresh_cold.fetch_add(1, Ordering::Relaxed);
            build_snapshot(matrix, prefs, current.config, progress, next_version)?
        };
        self.install(snapshot);
        // Counter order matters for observers: `refresh_passes` last, so
        // `refresh_incremental + refresh_cold >= refresh_passes` holds in
        // every interleaving a `/stats` read can see. Admission counters
        // increment after the install for the same reason: once visible,
        // the snapshot's `n_users`/`n_items` already cover them.
        if admitted_users > 0 {
            self.stats
                .users_admitted
                .fetch_add(admitted_users, Ordering::Relaxed);
        }
        if admitted_items > 0 {
            self.stats
                .items_admitted
                .fetch_add(admitted_items, Ordering::Relaxed);
        }
        self.stats
            .rates_applied
            .fetch_add(chunk.len() as u64, Ordering::Relaxed);
        self.stats.refresh_passes.fetch_add(1, Ordering::Relaxed);
        Ok(chunk.len())
    }

    /// One catch-up pass for a capped repair budget
    /// ([`ServeConfig::with_max_swaps`]): when the journal is empty but
    /// the standing former's last refresh had to defer bucket admissions
    /// ([`IncrementalFormer::selection_lag`] > 0), an empty refresh admits
    /// the next budget's worth and installs the improved snapshot.
    /// Returns whether a pass ran (callers loop until `false`). With an
    /// unbounded budget (the default) the lag is always 0 and this is a
    /// no-op.
    pub fn catch_up(&self) -> Result<bool> {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        if !self
            .pending
            .lock()
            .expect("pending lock poisoned")
            .updates
            .is_empty()
        {
            return Ok(false); // real updates take priority; they catch up too
        }
        let current = self.snapshot();
        let mut slot = self.former.lock().expect("former lock poisoned");
        let Some(s) = slot.as_mut() else {
            return Ok(false);
        };
        if s.synced_version != current.version
            || s.former.config() != &current.config
            || s.former.selection_lag() <= 0.0
        {
            return Ok(false);
        }
        let lag_before = s.former.selection_lag();
        s.former.refresh(&current.matrix, &current.prefs, &[])?;
        if s.former.selection_lag() >= lag_before {
            // A zero budget (or a tie) makes no progress; installing the
            // identical formation forever would spin. Keep the bounded
            // snapshot — the quality bound still holds.
            return Ok(false);
        }
        let next_version = current.version + 1;
        s.synced_version = next_version;
        let formation = s.former.result().clone();
        drop(slot);
        self.stats
            .refresh_incremental
            .fetch_add(1, Ordering::Relaxed);
        self.install(snapshot_with_formation(
            Arc::clone(&current.matrix),
            Arc::clone(&current.prefs),
            current.config,
            formation,
            current.progress,
            next_version,
        ));
        self.stats.refresh_passes.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Synchronously applies *all* pending updates (possibly over several
    /// bounded passes), then drains any capped-repair catch-up. After
    /// `flush` returns, queries see every rating accepted before the call
    /// and a capped former has converged as far as its budget allows.
    pub fn flush(&self) -> Result<()> {
        while self.process_pending()? > 0 {}
        while self.catch_up()? {}
        Ok(())
    }

    /// Re-forms groups under `cfg` over the current matrix and installs
    /// the result as the serving snapshot (including `cfg` as the new
    /// current configuration for background passes).
    ///
    /// Concurrent `form` calls with the **same configuration** arriving
    /// within the batching window are coalesced into a single formation
    /// run whose snapshot all of them return.
    pub fn form(&self, cfg: FormationConfig) -> Result<BatchOutcome> {
        self.stats.form_requests.fetch_add(1, Ordering::Relaxed);
        self.batcher.submit(cfg, || {
            self.stats.form_runs.fetch_add(1, Ordering::Relaxed);
            let _writer = self.writer.lock().expect("writer lock poisoned");
            let current = self.snapshot();
            // The ratings are unchanged: the new snapshot shares them.
            let snapshot = build_snapshot(
                Arc::clone(&current.matrix),
                Arc::clone(&current.prefs),
                cfg,
                current.progress,
                current.version + 1,
            )?;
            let shared = self.install(snapshot);
            // A same-configuration `/form` reproduces exactly the greedy
            // formation the standing former maintains, so its lineage is
            // still valid — re-sync it instead of letting the next pass
            // rebuild the former cold. (A capped former mid-repair is
            // excluded: its bounded formation differs from the fresh one.)
            let mut slot = self.former.lock().expect("former lock poisoned");
            if let Some(s) = slot.as_mut() {
                if s.synced_version == current.version
                    && s.former.config() == &cfg
                    && s.former.selection_lag() <= 0.0
                {
                    s.synced_version = shared.version;
                }
            }
            drop(slot);
            Ok(shared)
        })
    }

    /// Parks until rating updates arrive (or shutdown), then runs bounded
    /// passes. The HTTP server spawns this on a dedicated thread; tests
    /// can drive [`ServeState::process_pending`] directly instead.
    pub fn run_refresh_worker(&self) {
        loop {
            {
                let mut q = self.pending.lock().expect("pending lock poisoned");
                while q.updates.is_empty() && !q.shutdown {
                    q = self.wakeup.wait(q).expect("pending lock poisoned");
                }
                if q.shutdown && q.updates.is_empty() {
                    return;
                }
            }
            // A failure here means a validated update stopped applying —
            // only possible through a serve-layer bug; surface loudly.
            self.process_pending().expect("background pass failed");
            // Once the journal drains, let a capped repair budget converge
            // before parking again (no-op under the default unbounded
            // budget).
            if self.pending_len() == 0 {
                while self.catch_up().expect("catch-up pass failed") {}
            }
        }
    }

    /// Asks the refresh worker to exit once the journal drains, pushing
    /// any interval-mode WAL tail to disk on the way (best effort — a
    /// sync failure at shutdown has no one left to reject).
    pub fn shutdown(&self) {
        let mut q = self.pending.lock().expect("pending lock poisoned");
        q.shutdown = true;
        if let Some(wal) = q.wal.as_mut() {
            let _ = wal.sync();
        }
        drop(q);
        self.wakeup.notify_all();
    }

    /// Freezes a consistent bundle for the checkpointer. Taking `writer`
    /// briefly excludes concurrent installs, so the exported former state
    /// (when its lineage is current) matches the exported snapshot
    /// version; the deep copy into owned checkpoint structures happens in
    /// the caller, outside every lock.
    pub(crate) fn export_for_checkpoint(&self) -> ExportedState {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let snap = self.snapshot();
        let former = {
            let slot = self.former.lock().expect("former lock poisoned");
            slot.as_ref()
                .filter(|s| s.synced_version == snap.version && s.former.config() == &snap.config)
                .map(|s| s.former.export_state())
        };
        ExportedState {
            version: snap.version,
            progress: snap.progress,
            config: snap.config,
            matrix: Arc::clone(&snap.matrix),
            prefs: Arc::clone(&snap.prefs),
            formation: snap.formation.clone(),
            former,
        }
    }

    /// An order-sensitive FNV-1a fingerprint of the serving state: version,
    /// journal progress, configuration, every stored rating and the full
    /// formation (membership, top-k lists, satisfaction bits). Two servers
    /// that applied the same journal — one uninterrupted, one crash-restored
    /// — produce the same digest; the crash harness asserts exactly that.
    pub fn digest(&self) -> u64 {
        let snap = self.snapshot();
        let mut d = StateDigest::new();
        d.u64(snap.version)
            .u64(snap.progress.wal_seq)
            .u64(snap.progress.applied)
            .u64(snap.progress.users_admitted)
            .u64(snap.progress.items_admitted)
            .bytes(format!("{:?}", snap.config).as_bytes())
            .matrix(&snap.matrix)
            .formation(&snap.formation);
        d.finish()
    }

    fn install(&self, snapshot: Snapshot) -> Arc<Snapshot> {
        let shared = Arc::new(snapshot);
        let mut slot = self.snapshot.write().expect("snapshot lock poisoned");
        *slot = Arc::clone(&shared);
        shared
    }
}

/// Runs a formation over `matrix` and bundles the result.
///
/// The engine follows the refresh mode so that every snapshot a serving
/// instance installs has the same grouping shape: under
/// [`RefreshMode::Cold`](gf_core::RefreshMode) — where the incremental
/// path never runs — this is the population-sharded [`ShardedFormer`];
/// under `Auto`/`Incremental` it is the plain [`GreedyFormer`] (Step-1
/// bucket building still threaded per `cfg.n_threads`), the exact
/// formation the [`IncrementalFormer`] maintains. Without this split, a
/// multi-worker configuration would flip users between a sharded and an
/// unsharded grouping depending on which path the last pass took.
fn build_snapshot(
    matrix: Arc<RatingMatrix>,
    prefs: Arc<PrefIndex>,
    cfg: FormationConfig,
    progress: Progress,
    version: u64,
) -> Result<Snapshot> {
    let formation = match cfg.refresh {
        gf_core::RefreshMode::Cold => ShardedFormer::new().form(&matrix, &prefs, &cfg)?,
        gf_core::RefreshMode::Auto | gf_core::RefreshMode::Incremental => {
            gf_core::GreedyFormer::new().form(&matrix, &prefs, &cfg)?
        }
    };
    Ok(snapshot_with_formation(
        matrix, prefs, cfg, formation, progress, version,
    ))
}

/// Bundles an already-computed formation into a snapshot — the single
/// place the user→group assignment is derived and the `Snapshot` struct
/// is assembled, shared by the cold and incremental refresh paths.
fn snapshot_with_formation(
    matrix: Arc<RatingMatrix>,
    prefs: Arc<PrefIndex>,
    config: FormationConfig,
    formation: FormationResult,
    progress: Progress,
    version: u64,
) -> Snapshot {
    let assignment = formation.grouping.assignment(matrix.n_users());
    Snapshot {
        matrix,
        prefs,
        config,
        formation,
        assignment,
        version,
        progress,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_core::{Aggregation, RatingScale, Semantics};

    fn matrix(n: u32, m: u32) -> RatingMatrix {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|u| {
                (0..m)
                    .map(|i| 1.0 + ((u * 7 + i * 3 + u * i) % 5) as f64)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap()
    }

    fn state(n: u32, m: u32, ell: usize) -> Arc<ServeState> {
        let cfg = ServeConfig::new(FormationConfig::new(
            Semantics::LeastMisery,
            Aggregation::Min,
            2,
            ell,
        ))
        .with_batch_window(Duration::ZERO);
        ServeState::new(matrix(n, m), cfg).unwrap()
    }

    #[test]
    fn initial_snapshot_covers_every_user() {
        let s = state(12, 5, 3);
        let snap = s.snapshot();
        assert_eq!(snap.version, 1);
        assert!(snap.assignment.iter().all(Option::is_some));
        snap.formation.grouping.validate(12, 3).unwrap();
    }

    #[test]
    fn rate_validates_before_enqueue() {
        let s = state(4, 4, 2);
        assert!(matches!(
            s.rate(99, 0, 3.0),
            Err(GfError::UserOutOfRange { .. })
        ));
        assert!(matches!(
            s.rate(0, 99, 3.0),
            Err(GfError::ItemOutOfRange { .. })
        ));
        assert!(matches!(
            s.rate(0, 0, 9.0),
            Err(GfError::ScaleViolation { .. })
        ));
        assert!(matches!(
            s.rate(0, 0, f64::NAN),
            Err(GfError::NonFiniteScore { .. })
        ));
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn rate_is_deferred_until_flush() {
        let s = state(6, 4, 2);
        let before = s.snapshot();
        assert_eq!(s.rate(0, 1, 5.0).unwrap(), 1);
        assert_eq!(s.pending_len(), 1);
        // Queries still see the old snapshot.
        assert_eq!(s.snapshot().version, before.version);
        s.flush().unwrap();
        let after = s.snapshot();
        assert_eq!(after.version, before.version + 1);
        assert_eq!(after.matrix.get(0, 1), Some(5.0));
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn bounded_passes_split_large_batches() {
        let cfg = ServeConfig::new(FormationConfig::new(
            Semantics::AggregateVoting,
            Aggregation::Sum,
            2,
            2,
        ))
        .with_max_updates_per_pass(2);
        let s = ServeState::new(matrix(5, 5), cfg).unwrap();
        for i in 0..5 {
            s.rate(i % 5, i % 5, 4.0).unwrap();
        }
        assert_eq!(s.process_pending().unwrap(), 2);
        assert_eq!(s.pending_len(), 3);
        s.flush().unwrap();
        assert_eq!(s.pending_len(), 0);
        assert_eq!(s.stats.rates_applied.load(Ordering::Relaxed), 5);
        assert!(s.stats.refresh_passes.load(Ordering::Relaxed) >= 3);
    }

    #[test]
    fn form_installs_new_config() {
        let s = state(10, 6, 2);
        let new_cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 3, 4);
        let outcome = s.form(new_cfg).unwrap();
        assert_eq!(outcome.snapshot.config, new_cfg);
        assert_eq!(s.snapshot().version, 2);
        // Background passes now re-form under the new config.
        s.rate(0, 0, 1.0).unwrap();
        s.flush().unwrap();
        assert_eq!(s.snapshot().config, new_cfg);
    }

    #[test]
    fn auto_mode_takes_incremental_path_for_small_batches() {
        let s = state(10, 5, 3);
        s.rate(1, 1, 5.0).unwrap();
        s.flush().unwrap();
        s.rate(2, 0, 4.0).unwrap();
        s.rate(7, 3, 1.0).unwrap();
        s.flush().unwrap();
        // 10 users, auto threshold max(64, n/8): every pass is incremental.
        assert_eq!(s.stats.refresh_incremental.load(Ordering::Relaxed), 2);
        assert_eq!(s.stats.refresh_cold.load(Ordering::Relaxed), 0);
        // And the snapshots match a cold rebuild over the same ratings.
        let snap = s.snapshot();
        let cold = ServeState::new(
            snap.matrix.as_ref().clone(),
            ServeConfig::new(snap.config).with_batch_window(Duration::ZERO),
        )
        .unwrap();
        assert_eq!(snap.formation, cold.snapshot().formation);
    }

    #[test]
    fn growth_rides_the_incremental_path() {
        let cfg = ServeConfig::new(
            FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 3)
                .with_growth(gf_core::GrowthPolicy::unbounded()),
        )
        .with_batch_window(Duration::ZERO);
        let s = ServeState::new(matrix(10, 5), cfg).unwrap();
        s.rate(0, 0, 5.0).unwrap();
        s.flush().unwrap(); // standing former initialized
        s.rate(13, 6, 4.0).unwrap(); // admission lands on the warm former
        s.flush().unwrap();
        assert_eq!(s.stats.refresh_incremental.load(Ordering::Relaxed), 2);
        assert_eq!(s.stats.users_admitted.load(Ordering::Relaxed), 4);
        assert_eq!(s.stats.items_admitted.load(Ordering::Relaxed), 2);
        let snap = s.snapshot();
        assert_eq!(snap.matrix.n_users(), 14);
        assert_eq!(snap.assignment.len(), 14);
        assert!(snap.assignment.iter().all(Option::is_some));
        // Equal to a cold boot over the grown universe.
        let cold = ServeState::new(
            snap.matrix.as_ref().clone(),
            ServeConfig::new(snap.config).with_batch_window(Duration::ZERO),
        )
        .unwrap();
        assert_eq!(snap.formation, cold.snapshot().formation);
    }

    #[test]
    fn cold_mode_never_touches_the_former() {
        let cfg = ServeConfig::new(
            FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 3)
                .with_refresh(gf_core::RefreshMode::Cold),
        )
        .with_batch_window(Duration::ZERO);
        let s = ServeState::new(matrix(9, 5), cfg).unwrap();
        s.rate(0, 0, 5.0).unwrap();
        s.flush().unwrap();
        assert_eq!(s.stats.refresh_incremental.load(Ordering::Relaxed), 0);
        assert_eq!(s.stats.refresh_cold.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn form_breaks_former_lineage_but_refreshes_stay_correct() {
        let s = state(12, 6, 3);
        s.rate(0, 0, 5.0).unwrap();
        s.flush().unwrap(); // former initialized + synced
        let new_cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 2, 4);
        s.form(new_cfg).unwrap(); // snapshot the former did not produce
        s.rate(3, 3, 2.0).unwrap();
        s.flush().unwrap(); // must re-init under the new config
        assert_eq!(s.stats.refresh_incremental.load(Ordering::Relaxed), 2);
        let snap = s.snapshot();
        assert_eq!(snap.config, new_cfg);
        let cold = ServeState::new(
            snap.matrix.as_ref().clone(),
            ServeConfig::new(new_cfg).with_batch_window(Duration::ZERO),
        )
        .unwrap();
        assert_eq!(snap.formation, cold.snapshot().formation);
    }

    #[test]
    fn worker_drains_and_shuts_down() {
        let s = state(8, 4, 2);
        let worker = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || s.run_refresh_worker())
        };
        s.rate(3, 2, 5.0).unwrap();
        // The worker should pick the update up without an explicit flush.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while s.snapshot().matrix.get(3, 2) != Some(5.0) {
            assert!(std::time::Instant::now() < deadline, "worker never applied");
            std::thread::sleep(Duration::from_millis(1));
        }
        s.shutdown();
        worker.join().unwrap();
    }
}
