//! Shared serving state: immutable snapshots, incremental rating updates
//! and the bounded background re-formation pass.
//!
//! ## Consistency model
//!
//! All queries (`/group`, `/recommend`, `/health`) read one [`Snapshot`] —
//! an immutable, `Arc`-shared bundle of the rating matrix, the preference
//! index, the current [`FormationResult`] and the user→group assignment.
//! Readers clone the `Arc` under a briefly-held read lock and then work
//! lock-free; writers build the next snapshot off to the side and swap it
//! in with a briefly-held write lock. A query therefore always sees an
//! internally consistent formation, never a half-applied update.
//!
//! Rating updates (`/rate`) are **eventually consistent**: they enqueue
//! into a pending journal and return immediately; the background
//! re-formation pass (one bounded batch of updates per pass, see
//! [`ServeConfig::max_updates_per_pass`]) patches the affected users'
//! preference lists ([`PrefIndex::patch_user`]), marks those users' greedy
//! buckets dirty and re-forms. The incremental path is **test-enforced**
//! to converge to exactly the snapshot a cold rebuild over the same
//! ratings produces (`tests/serve_props.rs`).

use crate::batch::{BatchOutcome, Batcher};
use gf_core::{
    FormationConfig, FormationResult, GfError, GroupFormer, PrefIndex, RatingMatrix, Result,
    ShardedFormer,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

/// Everything that parameterises a serving instance.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Formation configuration used for the initial formation and for
    /// background re-formation (until a `/form` request overrides it).
    pub formation: FormationConfig,
    /// How long a `/form` leader waits for concurrent same-configuration
    /// requests to join its batch before running.
    pub batch_window: Duration,
    /// Upper bound on how many rating updates one background re-formation
    /// pass applies; more pending updates simply take more passes.
    pub max_updates_per_pass: usize,
}

impl ServeConfig {
    /// Defaults: a 5 ms batching window and at most 1024 updates per pass.
    pub fn new(formation: FormationConfig) -> Self {
        ServeConfig {
            formation,
            batch_window: Duration::from_millis(5),
            max_updates_per_pass: 1024,
        }
    }

    /// Overrides the `/form` batching window.
    pub fn with_batch_window(mut self, window: Duration) -> Self {
        self.batch_window = window;
        self
    }

    /// Overrides the per-pass update bound (clamped to at least 1).
    pub fn with_max_updates_per_pass(mut self, max: usize) -> Self {
        self.max_updates_per_pass = max.max(1);
        self
    }
}

/// One immutable, internally consistent view of the serving state.
#[derive(Debug)]
pub struct Snapshot {
    /// The rating matrix this formation was computed on.
    pub matrix: RatingMatrix,
    /// Preference index built on (or incrementally patched to match)
    /// `matrix`.
    pub prefs: PrefIndex,
    /// The formation configuration the groups were formed under.
    pub config: FormationConfig,
    /// The current formation.
    pub formation: FormationResult,
    /// `assignment[u]` = index into `formation.grouping.groups`, `None`
    /// for users the formation did not cover (impossible for valid
    /// formations, kept as `Option` for defense in depth).
    pub assignment: Vec<Option<usize>>,
    /// Monotonic snapshot version; bumped on every install.
    pub version: u64,
}

/// Counters exposed by `/stats`; cheap relaxed atomics.
#[derive(Debug, Default)]
pub struct Stats {
    /// Ratings accepted into the pending journal.
    pub rates_accepted: AtomicU64,
    /// Ratings applied by background passes.
    pub rates_applied: AtomicU64,
    /// Background re-formation passes run.
    pub refresh_passes: AtomicU64,
    /// `/form` requests received.
    pub form_requests: AtomicU64,
    /// Actual formation runs executed on behalf of `/form` (≤ requests;
    /// the difference is requests answered from a coalesced batch).
    pub form_runs: AtomicU64,
}

struct PendingQueue {
    updates: Vec<(u32, u32, f64)>,
    shutdown: bool,
}

/// The long-lived serving state shared by every connection handler.
pub struct ServeState {
    snapshot: RwLock<Arc<Snapshot>>,
    /// Serializes snapshot *builders* (background passes and `/form`
    /// runs) so concurrent writers cannot interleave lost updates; held
    /// across compute + install, never by readers.
    writer: Mutex<()>,
    pending: Mutex<PendingQueue>,
    wakeup: Condvar,
    batcher: Batcher,
    max_updates_per_pass: usize,
    /// Counters for `/stats`.
    pub stats: Stats,
}

impl ServeState {
    /// Builds the initial snapshot (version 1) by running a full formation
    /// over `matrix` and wraps it in a shareable state.
    pub fn new(matrix: RatingMatrix, cfg: ServeConfig) -> Result<Arc<ServeState>> {
        let prefs = PrefIndex::build(&matrix);
        let snapshot = build_snapshot(matrix, prefs, cfg.formation, 1)?;
        Ok(Arc::new(ServeState {
            snapshot: RwLock::new(Arc::new(snapshot)),
            writer: Mutex::new(()),
            pending: Mutex::new(PendingQueue {
                updates: Vec::new(),
                shutdown: false,
            }),
            wakeup: Condvar::new(),
            batcher: Batcher::new(cfg.batch_window),
            max_updates_per_pass: cfg.max_updates_per_pass.max(1),
            stats: Stats::default(),
        }))
    }

    /// The current snapshot. Readers hold the lock only long enough to
    /// clone the `Arc`; everything after is lock-free.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"))
    }

    /// Number of rating updates waiting for the background pass.
    pub fn pending_len(&self) -> usize {
        self.pending
            .lock()
            .expect("pending lock poisoned")
            .updates
            .len()
    }

    /// Accepts one rating update into the pending journal.
    ///
    /// The update is validated against the current snapshot's dimensions
    /// and scale so malformed requests fail fast; it becomes visible to
    /// queries only once a background pass installs the next snapshot
    /// (call [`ServeState::flush`] to force that synchronously).
    /// Returns the number of updates now pending.
    pub fn rate(&self, user: u32, item: u32, score: f64) -> Result<usize> {
        let snap = self.snapshot();
        let matrix = &snap.matrix;
        if user >= matrix.n_users() {
            return Err(GfError::UserOutOfRange {
                user,
                n_users: matrix.n_users(),
            });
        }
        if item >= matrix.n_items() {
            return Err(GfError::ItemOutOfRange {
                item,
                n_items: matrix.n_items(),
            });
        }
        if !score.is_finite() {
            return Err(GfError::NonFiniteScore { user, item });
        }
        if !matrix.scale().contains(score) {
            return Err(GfError::ScaleViolation { user, item, score });
        }
        let mut q = self.pending.lock().expect("pending lock poisoned");
        q.updates.push((user, item, score));
        let depth = q.updates.len();
        drop(q);
        self.stats.rates_accepted.fetch_add(1, Ordering::Relaxed);
        self.wakeup.notify_one();
        Ok(depth)
    }

    /// Runs one bounded background pass: drains up to
    /// `max_updates_per_pass` pending updates, patches the matrix and the
    /// affected users' preference lists incrementally, re-forms under the
    /// current configuration and installs the result. Returns how many
    /// updates were applied (0 when nothing was pending).
    pub fn process_pending(&self) -> Result<usize> {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let chunk: Vec<(u32, u32, f64)> = {
            let mut q = self.pending.lock().expect("pending lock poisoned");
            let take = q.updates.len().min(self.max_updates_per_pass);
            q.updates.drain(..take).collect()
        };
        if chunk.is_empty() {
            return Ok(0);
        }
        let current = self.snapshot();
        let mut matrix = current.matrix.clone();
        let mut prefs = current.prefs.clone();
        // Apply the batch, then re-sort each dirty user's preference list
        // exactly once — the incremental counterpart of PrefIndex::build.
        let mut dirty: Vec<u32> = Vec::with_capacity(chunk.len());
        for &(u, i, s) in &chunk {
            matrix.upsert(u, i, s)?;
            dirty.push(u);
        }
        dirty.sort_unstable();
        dirty.dedup();
        for &u in &dirty {
            prefs.patch_user(&matrix, u);
        }
        let snapshot = build_snapshot(matrix, prefs, current.config, current.version + 1)?;
        self.install(snapshot);
        self.stats
            .rates_applied
            .fetch_add(chunk.len() as u64, Ordering::Relaxed);
        self.stats.refresh_passes.fetch_add(1, Ordering::Relaxed);
        Ok(chunk.len())
    }

    /// Synchronously applies *all* pending updates (possibly over several
    /// bounded passes). After `flush` returns, queries see every rating
    /// accepted before the call.
    pub fn flush(&self) -> Result<()> {
        while self.process_pending()? > 0 {}
        Ok(())
    }

    /// Re-forms groups under `cfg` over the current matrix and installs
    /// the result as the serving snapshot (including `cfg` as the new
    /// current configuration for background passes).
    ///
    /// Concurrent `form` calls with the **same configuration** arriving
    /// within the batching window are coalesced into a single formation
    /// run whose snapshot all of them return.
    pub fn form(&self, cfg: FormationConfig) -> Result<BatchOutcome> {
        self.stats.form_requests.fetch_add(1, Ordering::Relaxed);
        self.batcher.submit(cfg, || {
            self.stats.form_runs.fetch_add(1, Ordering::Relaxed);
            let _writer = self.writer.lock().expect("writer lock poisoned");
            let current = self.snapshot();
            let snapshot = build_snapshot(
                current.matrix.clone(),
                current.prefs.clone(),
                cfg,
                current.version + 1,
            )?;
            let shared = self.install(snapshot);
            Ok(shared)
        })
    }

    /// Parks until rating updates arrive (or shutdown), then runs bounded
    /// passes. The HTTP server spawns this on a dedicated thread; tests
    /// can drive [`ServeState::process_pending`] directly instead.
    pub fn run_refresh_worker(&self) {
        loop {
            {
                let mut q = self.pending.lock().expect("pending lock poisoned");
                while q.updates.is_empty() && !q.shutdown {
                    q = self.wakeup.wait(q).expect("pending lock poisoned");
                }
                if q.shutdown && q.updates.is_empty() {
                    return;
                }
            }
            // A failure here means a validated update stopped applying —
            // only possible through a serve-layer bug; surface loudly.
            self.process_pending().expect("background pass failed");
        }
    }

    /// Asks the refresh worker to exit once the journal drains.
    pub fn shutdown(&self) {
        self.pending.lock().expect("pending lock poisoned").shutdown = true;
        self.wakeup.notify_all();
    }

    fn install(&self, snapshot: Snapshot) -> Arc<Snapshot> {
        let shared = Arc::new(snapshot);
        let mut slot = self.snapshot.write().expect("snapshot lock poisoned");
        *slot = Arc::clone(&shared);
        shared
    }
}

/// Runs a formation over `matrix` and bundles the result. Always goes
/// through [`ShardedFormer`], which degrades to the plain greedy whenever
/// `cfg.n_threads` resolves to one worker.
fn build_snapshot(
    matrix: RatingMatrix,
    prefs: PrefIndex,
    cfg: FormationConfig,
    version: u64,
) -> Result<Snapshot> {
    let formation = ShardedFormer::new().form(&matrix, &prefs, &cfg)?;
    let assignment = formation.grouping.assignment(matrix.n_users());
    Ok(Snapshot {
        matrix,
        prefs,
        config: cfg,
        formation,
        assignment,
        version,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_core::{Aggregation, RatingScale, Semantics};

    fn matrix(n: u32, m: u32) -> RatingMatrix {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|u| {
                (0..m)
                    .map(|i| 1.0 + ((u * 7 + i * 3 + u * i) % 5) as f64)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap()
    }

    fn state(n: u32, m: u32, ell: usize) -> Arc<ServeState> {
        let cfg = ServeConfig::new(FormationConfig::new(
            Semantics::LeastMisery,
            Aggregation::Min,
            2,
            ell,
        ))
        .with_batch_window(Duration::ZERO);
        ServeState::new(matrix(n, m), cfg).unwrap()
    }

    #[test]
    fn initial_snapshot_covers_every_user() {
        let s = state(12, 5, 3);
        let snap = s.snapshot();
        assert_eq!(snap.version, 1);
        assert!(snap.assignment.iter().all(Option::is_some));
        snap.formation.grouping.validate(12, 3).unwrap();
    }

    #[test]
    fn rate_validates_before_enqueue() {
        let s = state(4, 4, 2);
        assert!(matches!(
            s.rate(99, 0, 3.0),
            Err(GfError::UserOutOfRange { .. })
        ));
        assert!(matches!(
            s.rate(0, 99, 3.0),
            Err(GfError::ItemOutOfRange { .. })
        ));
        assert!(matches!(
            s.rate(0, 0, 9.0),
            Err(GfError::ScaleViolation { .. })
        ));
        assert!(matches!(
            s.rate(0, 0, f64::NAN),
            Err(GfError::NonFiniteScore { .. })
        ));
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn rate_is_deferred_until_flush() {
        let s = state(6, 4, 2);
        let before = s.snapshot();
        assert_eq!(s.rate(0, 1, 5.0).unwrap(), 1);
        assert_eq!(s.pending_len(), 1);
        // Queries still see the old snapshot.
        assert_eq!(s.snapshot().version, before.version);
        s.flush().unwrap();
        let after = s.snapshot();
        assert_eq!(after.version, before.version + 1);
        assert_eq!(after.matrix.get(0, 1), Some(5.0));
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn bounded_passes_split_large_batches() {
        let cfg = ServeConfig::new(FormationConfig::new(
            Semantics::AggregateVoting,
            Aggregation::Sum,
            2,
            2,
        ))
        .with_max_updates_per_pass(2);
        let s = ServeState::new(matrix(5, 5), cfg).unwrap();
        for i in 0..5 {
            s.rate(i % 5, i % 5, 4.0).unwrap();
        }
        assert_eq!(s.process_pending().unwrap(), 2);
        assert_eq!(s.pending_len(), 3);
        s.flush().unwrap();
        assert_eq!(s.pending_len(), 0);
        assert_eq!(s.stats.rates_applied.load(Ordering::Relaxed), 5);
        assert!(s.stats.refresh_passes.load(Ordering::Relaxed) >= 3);
    }

    #[test]
    fn form_installs_new_config() {
        let s = state(10, 6, 2);
        let new_cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 3, 4);
        let outcome = s.form(new_cfg).unwrap();
        assert_eq!(outcome.snapshot.config, new_cfg);
        assert_eq!(s.snapshot().version, 2);
        // Background passes now re-form under the new config.
        s.rate(0, 0, 1.0).unwrap();
        s.flush().unwrap();
        assert_eq!(s.snapshot().config, new_cfg);
    }

    #[test]
    fn worker_drains_and_shuts_down() {
        let s = state(8, 4, 2);
        let worker = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || s.run_refresh_worker())
        };
        s.rate(3, 2, 5.0).unwrap();
        // The worker should pick the update up without an explicit flush.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while s.snapshot().matrix.get(3, 2) != Some(5.0) {
            assert!(std::time::Instant::now() < deadline, "worker never applied");
            std::thread::sleep(Duration::from_millis(1));
        }
        s.shutdown();
        worker.join().unwrap();
    }
}
