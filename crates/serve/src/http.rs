//! Request routing and response shaping — the transport-agnostic half
//! of the HTTP server.
//!
//! The environment is offline, so the protocol is hand-rolled the same
//! way the `vendor/` stubs stand in for crates: just enough HTTP/1.1
//! for `curl`, load generators and browsers — request line, headers,
//! `Content-Length` bodies, keep-alive with explicit lengths on every
//! response. No chunked encoding, no TLS, no HTTP/2. The byte-level
//! codec and both transports (the epoll readiness loop and the blocking
//! fallback) live in [`crate::net`]; everything there funnels into
//! [`route_full`] here, so routing behavior is transport-independent by
//! construction.
//!
//! ## Endpoints (`/v1`)
//!
//! The surface lives under the versioned `/v1/` namespace. Every
//! unversioned path (`/health`, `/rate`, …) remains a thin alias for its
//! `/v1` twin: same handler, same body, plus a `Deprecation: true`
//! response header. The aliases differ in exactly one default —
//! `exclude_rated` is off on the legacy `/recommend` so pre-`/v1`
//! clients keep seeing unfiltered lists.
//!
//! | method & path | body | answer |
//! |---------------|------|--------|
//! | `GET /v1/health` | — | liveness + snapshot version/shape |
//! | `GET /v1/stats` | — | serving counters, the per-grouping registry and the per-grouping online `quality` block |
//! | `GET /v1/digest` | — | FNV-1a fingerprint of the full serving state plus one digest per grouping (crash-harness oracle) |
//! | `GET /v1/group/{user}?limit=&offset=` | — | the user's group under the `default` grouping |
//! | `GET /v1/group/{name}/{user}?limit=&offset=` | — | the user's group under the named grouping |
//! | `GET /v1/recommend/{group}?top_k=&exclude_rated=&limit=&offset=` | — | a group's recommendation list under the `default` grouping; `exclude_rated` (default on) drops items any member already rated |
//! | `GET /v1/recommend/{name}/{group}?top_k=&exclude_rated=&limit=&offset=` | — | the same under the named grouping |
//! | `POST /v1/form?name=` | optional config overrides | re-forms one existing grouping (default: `default`), batched per grouping |
//! | `POST /v1/grouping` | `{"name":..., ...overrides}` | registers (or reconfigures) a named grouping over the shared matrix |
//! | `POST /v1/rate` | `{"user":u,"item":i,"rating":r}` | enqueues an incremental update refreshing *every* grouping (202); under [`gf_core::GrowthPolicy::Grow`] a never-seen user/item is admitted (409 once a cap is exhausted) |
//! | `POST /v1/feedback` | `{"user":u,"item":i,"grouping":name?}` | journals one observed consumption (202) feeding the online quality metrics; never admits |
//!
//! ## Errors
//!
//! Every error answers with one envelope, `{"error":{"code":...,
//! "message":...}}`: a stable machine-readable `code` (see the README's
//! error-code table) and a human-readable `message`.

use crate::json::{obj, Json};
use crate::state::{ServeState, Snapshot};
use gf_core::{Aggregation, FormationConfig, GfError, Semantics};
use std::sync::atomic::Ordering;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, upper-case (`GET`, `POST`, …).
    pub method: String,
    /// Request target path, query string stripped.
    pub path: String,
    /// Raw query string (without the `?`; empty when absent).
    pub query: String,
    /// Raw request body (empty when no `Content-Length`).
    pub body: String,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Status line text for every status the server can answer with.
pub(crate) fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        _ => "Internal Server Error",
    }
}

/// The one error envelope every failure answers with: a stable
/// machine-readable `code` plus a human-readable `message`.
pub(crate) fn error_body(code: &'static str, message: impl std::fmt::Display) -> Json {
    obj([(
        "error",
        obj([
            ("code", Json::from(code)),
            ("message", Json::from(message.to_string())),
        ]),
    )])
}

/// Maps a state-layer error to its HTTP status and envelope code.
fn gf_error_response(err: &GfError) -> (u16, Json) {
    let (status, code) = match err {
        GfError::UserOutOfRange { .. } => (404, "unknown_user"),
        GfError::ItemOutOfRange { .. } => (404, "unknown_item"),
        // A growth cap refusing an admission is neither a malformed
        // request (400) nor an unknown id the client should retry (404):
        // the universe is full until the operator raises the cap.
        GfError::GrowthExhausted { .. } => (409, "growth_exhausted"),
        // A journaling failure is the server's disk, not the client's
        // request; surface it as a 500 so retries/alerts fire correctly.
        GfError::Persist(_) => (500, "persist_error"),
        GfError::InvalidGrouping(_) => (400, "invalid_grouping"),
        _ => (400, "bad_request"),
    };
    (status, error_body(code, err))
}

/// The `/v1` route table — one `(method, path pattern)` row per
/// endpoint. Dispatch is the `match` in [`route_full`]; this table is
/// the declarative mirror that `tests/routes.rs` checks against the
/// module-doc and README endpoint tables, so the three can never drift
/// apart silently.
pub const ROUTE_TABLE: &[(&str, &str)] = &[
    ("GET", "/v1/health"),
    ("GET", "/v1/stats"),
    ("GET", "/v1/digest"),
    ("GET", "/v1/group/{user}"),
    ("GET", "/v1/group/{name}/{user}"),
    ("GET", "/v1/recommend/{group}"),
    ("GET", "/v1/recommend/{name}/{group}"),
    ("POST", "/v1/form"),
    ("POST", "/v1/grouping"),
    ("POST", "/v1/rate"),
    ("POST", "/v1/feedback"),
];

/// A fully resolved response: status, JSON body, and whether the request
/// arrived through a deprecated (unversioned) alias — the connection
/// handler turns the flag into a `Deprecation: true` response header.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOutcome {
    /// HTTP status code.
    pub status: u16,
    /// JSON response body.
    pub body: Json,
    /// The request used a legacy unversioned path.
    pub deprecated: bool,
}

/// Routes one request to `(status, JSON body)` — [`route_full`] without
/// the deprecation flag, kept for embedders and tests that only care
/// about the payload.
pub fn route(state: &ServeState, req: &HttpRequest) -> (u16, Json) {
    let outcome = route_full(state, req);
    (outcome.status, outcome.body)
}

/// Routes one request. Pure apart from the state it queries/mutates —
/// exercised directly by unit tests, no socket required.
///
/// The canonical surface is `/v1/...`; an unversioned path dispatches to
/// the identical handler (so every route has a legacy alias) but is
/// flagged deprecated, and its `/recommend` alias defaults
/// `exclude_rated` off where `/v1` defaults it on.
pub fn route_full(state: &ServeState, req: &HttpRequest) -> RouteOutcome {
    let (path, versioned) = match req.path.strip_prefix("/v1") {
        Some(rest) if rest.starts_with('/') => (rest, true),
        _ => (req.path.as_str(), false),
    };
    let (status, body) = dispatch(state, req, path, versioned);
    RouteOutcome {
        status,
        body,
        deprecated: !versioned,
    }
}

fn dispatch(state: &ServeState, req: &HttpRequest, path: &str, versioned: bool) -> (u16, Json) {
    match (req.method.as_str(), path) {
        ("GET", "/health") => {
            let snap = state.snapshot();
            let default = snap.default_grouping();
            (
                200,
                obj([
                    ("status", Json::from("ok")),
                    ("version", Json::from(snap.version)),
                    ("users", Json::from(snap.matrix.n_users())),
                    ("items", Json::from(snap.matrix.n_items())),
                    ("groups", Json::from(default.formation.grouping.len())),
                    ("objective", Json::from(default.formation.objective)),
                    ("groupings", Json::from(snap.groupings.len())),
                    ("pending", Json::from(state.pending_len())),
                ]),
            )
        }
        ("GET", "/stats") => {
            let s = &state.stats;
            let snap = state.snapshot();
            (
                200,
                obj([
                    (
                        "rates_accepted",
                        Json::from(s.rates_accepted.load(Ordering::Relaxed)),
                    ),
                    (
                        "rates_applied",
                        Json::from(s.rates_applied.load(Ordering::Relaxed)),
                    ),
                    (
                        "refresh_passes",
                        Json::from(s.refresh_passes.load(Ordering::Relaxed)),
                    ),
                    (
                        "refresh_incremental",
                        Json::from(s.refresh_incremental.load(Ordering::Relaxed)),
                    ),
                    (
                        "refresh_cold",
                        Json::from(s.refresh_cold.load(Ordering::Relaxed)),
                    ),
                    (
                        "refresh_mode",
                        Json::from(snap.default_grouping().config.refresh.tag()),
                    ),
                    (
                        "admission_splits",
                        Json::from(s.admission_splits.load(Ordering::Relaxed)),
                    ),
                    ("groupings", groupings_json(&snap)),
                    ("n_users", Json::from(snap.matrix.n_users())),
                    ("n_items", Json::from(snap.matrix.n_items())),
                    (
                        "users_admitted",
                        Json::from(s.users_admitted.load(Ordering::Relaxed)),
                    ),
                    (
                        "items_admitted",
                        Json::from(s.items_admitted.load(Ordering::Relaxed)),
                    ),
                    (
                        "form_requests",
                        Json::from(s.form_requests.load(Ordering::Relaxed)),
                    ),
                    ("form_runs", Json::from(s.form_runs.load(Ordering::Relaxed))),
                    ("pending", Json::from(state.pending_len())),
                    ("version", Json::from(snap.version)),
                    (
                        "wal_records",
                        Json::from(s.wal_records.load(Ordering::Relaxed)),
                    ),
                    ("wal_seq", Json::from(snap.progress.wal_seq)),
                    (
                        "checkpoint_version",
                        Json::from(s.checkpoint_version.load(Ordering::Relaxed)),
                    ),
                    (
                        "checkpoints_written",
                        Json::from(s.checkpoints_written.load(Ordering::Relaxed)),
                    ),
                    (
                        "recovery_replayed",
                        Json::from(s.recovery_replayed.load(Ordering::Relaxed)),
                    ),
                    (
                        "recovery_dropped_bytes",
                        Json::from(s.recovery_dropped_bytes.load(Ordering::Relaxed)),
                    ),
                    (
                        "conns_accepted",
                        Json::from(s.conns_accepted.load(Ordering::Relaxed)),
                    ),
                    (
                        "conns_timed_out",
                        Json::from(s.conns_timed_out.load(Ordering::Relaxed)),
                    ),
                    (
                        "feedback_accepted",
                        Json::from(s.feedback_accepted.load(Ordering::Relaxed)),
                    ),
                    (
                        "feedback_applied",
                        Json::from(s.feedback_applied.load(Ordering::Relaxed)),
                    ),
                    ("feedback_window_events", Json::from(snap.feedback.len())),
                    ("quality", quality_json(&snap)),
                ]),
            )
        }
        ("GET", "/digest") => {
            let snap = state.snapshot();
            let digest = state.digest();
            let per_grouping = Json::Obj(
                snap.groupings
                    .keys()
                    .filter_map(|name| {
                        state
                            .grouping_digest(name)
                            .map(|d| (name.clone(), Json::from(format!("{d:016x}"))))
                    })
                    .collect(),
            );
            (
                200,
                obj([
                    ("digest", Json::from(format!("{digest:016x}"))),
                    ("version", Json::from(snap.version)),
                    ("wal_seq", Json::from(snap.progress.wal_seq)),
                    ("applied", Json::from(snap.progress.applied)),
                    ("users_admitted", Json::from(snap.progress.users_admitted)),
                    ("items_admitted", Json::from(snap.progress.items_admitted)),
                    ("groupings", per_grouping),
                ]),
            )
        }
        ("GET", path) if path.starts_with("/group/") => {
            let (name, id) = split_scoped(&path["/group/".len()..]);
            match (id.parse(), parse_page(&req.query)) {
                (Ok(user), Ok(page)) => group_of(state, name, user, page),
                (Err(_), _) => (
                    400,
                    error_body("bad_request", "user id must be a non-negative integer"),
                ),
                (_, Err(message)) => (400, error_body("bad_request", message)),
            }
        }
        ("GET", path) if path.starts_with("/recommend/") => {
            let (name, id) = split_scoped(&path["/recommend/".len()..]);
            // The one default the alias disagrees on: `/v1` filters to
            // candidate items unless told otherwise, the legacy route
            // keeps its historical unfiltered list.
            match (id.parse(), parse_recommend_params(&req.query, versioned)) {
                (Ok(group), Ok(params)) => recommend(state, name, group, params),
                (Err(_), _) => (
                    400,
                    error_body("bad_request", "group id must be a non-negative integer"),
                ),
                (_, Err(message)) => (400, error_body("bad_request", message)),
            }
        }
        ("POST", "/form") => form(state, &req.query, &req.body),
        ("POST", "/grouping") => create_grouping(state, &req.body),
        ("POST", "/rate") => rate(state, &req.body),
        ("POST", "/feedback") => feedback(state, &req.body),
        ("GET" | "POST", _) => (
            404,
            error_body(
                "unknown_endpoint",
                format!("no such endpoint: {}", req.path),
            ),
        ),
        _ => (
            405,
            error_body(
                "method_not_allowed",
                format!("method {} not allowed", req.method),
            ),
        ),
    }
}

fn top_k_json(top_k: &[(u32, f64)]) -> Json {
    Json::Arr(
        top_k
            .iter()
            .map(|&(item, score)| obj([("item", Json::from(item)), ("score", Json::from(score))]))
            .collect(),
    )
}

/// Default cap on rendered member lists: at serving scale the biggest
/// group dominates response size (and the ~157 µs 50k-user lookup), so
/// clients page through `?limit=`/`?offset=` instead; `members_total`
/// always carries the full size.
pub const DEFAULT_MEMBER_LIMIT: usize = 256;

/// A `?limit=&offset=` window over a group's member list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Page {
    offset: usize,
    limit: usize,
}

/// Parses `limit`/`offset` from a raw query string; unknown parameters
/// are ignored, malformed values are errors.
fn parse_page(query: &str) -> std::result::Result<Page, String> {
    let mut page = Page {
        offset: 0,
        limit: DEFAULT_MEMBER_LIMIT,
    };
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (name, value) = pair.split_once('=').unwrap_or((pair, ""));
        match name {
            "limit" => {
                page.limit = value
                    .parse()
                    .map_err(|_| "limit must be a non-negative integer".to_string())?;
            }
            "offset" => {
                page.offset = value
                    .parse()
                    .map_err(|_| "offset must be a non-negative integer".to_string())?;
            }
            _ => {}
        }
    }
    Ok(page)
}

/// Splits the tail of a `/group/…` or `/recommend/…` path: one segment
/// addresses the `default` grouping, two (`name/id`) name one explicitly.
fn split_scoped(rest: &str) -> (&str, &str) {
    match rest.split_once('/') {
        Some((name, id)) => (name, id),
        None => (Snapshot::DEFAULT_GROUPING, rest),
    }
}

/// Query parameters of `/recommend`: the shared `limit`/`offset` window
/// plus `top_k` (how much of the stored list to recommend, clamped to
/// its length) and `exclude_rated` (filter to candidate items — on by
/// default under `/v1`, off on the legacy alias).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RecommendParams {
    page: Page,
    top_k: Option<usize>,
    exclude_rated: bool,
}

fn parse_recommend_params(
    query: &str,
    versioned: bool,
) -> std::result::Result<RecommendParams, String> {
    let mut params = RecommendParams {
        page: parse_page(query)?,
        top_k: None,
        exclude_rated: versioned,
    };
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (name, value) = pair.split_once('=').unwrap_or((pair, ""));
        match name {
            "top_k" => {
                params.top_k = Some(
                    value
                        .parse()
                        .map_err(|_| "top_k must be a non-negative integer".to_string())?,
                );
            }
            "exclude_rated" => {
                params.exclude_rated = match value {
                    "true" | "1" => true,
                    "false" | "0" => false,
                    _ => return Err("exclude_rated must be true or false".to_string()),
                };
            }
            _ => {}
        }
    }
    Ok(params)
}

/// The `/v1/stats` quality block: per grouping, the online
/// precision/recall/NDCG of its groups' recommendation lists against
/// the feedback window, at the grouping's own `k`.
fn quality_json(snap: &Snapshot) -> Json {
    Json::Obj(
        snap.groupings
            .iter()
            .map(|(name, g)| {
                let group_items: Vec<Vec<u32>> = g
                    .formation
                    .grouping
                    .groups
                    .iter()
                    .map(|grp| grp.top_k.iter().map(|&(item, _)| item).collect())
                    .collect();
                let q = snap
                    .feedback
                    .evaluate(name, &g.assignment, &group_items, g.config.k);
                (
                    name.clone(),
                    obj([
                        ("k", Json::from(q.k)),
                        ("window_events", Json::from(q.window_events)),
                        ("groups_evaluated", Json::from(q.groups_evaluated)),
                        ("precision", Json::from(q.precision)),
                        ("recall", Json::from(q.recall)),
                        ("ndcg", Json::from(q.ndcg)),
                    ]),
                )
            })
            .collect(),
    )
}

/// The `/stats` registry listing: every named grouping with its version,
/// shape and algorithm — the operator's view of the whole registry.
fn groupings_json(snap: &Snapshot) -> Json {
    Json::Obj(
        snap.groupings
            .iter()
            .map(|(name, g)| {
                (
                    name.clone(),
                    obj([
                        ("version", Json::from(g.version)),
                        ("groups", Json::from(g.formation.grouping.len())),
                        ("objective", Json::from(g.formation.objective)),
                        ("algorithm", Json::from(g.config.grd_name())),
                    ]),
                )
            })
            .collect(),
    )
}

fn group_body(
    snap: &Snapshot,
    name: &str,
    g: &crate::state::GroupingState,
    gi: usize,
    page: Page,
) -> Json {
    let grp = &g.formation.grouping.groups[gi];
    let lo = page.offset.min(grp.members.len());
    let hi = lo.saturating_add(page.limit).min(grp.members.len());
    obj([
        ("grouping", Json::from(name)),
        ("group", Json::from(gi)),
        ("members_total", Json::from(grp.len())),
        ("members_offset", Json::from(lo)),
        (
            "members",
            Json::Arr(grp.members[lo..hi].iter().map(|&u| Json::from(u)).collect()),
        ),
        ("top_k", top_k_json(&grp.top_k)),
        ("satisfaction", Json::from(grp.satisfaction)),
        ("version", Json::from(snap.version)),
        ("grouping_version", Json::from(g.version)),
    ])
}

fn group_of(state: &ServeState, name: &str, user: u32, page: Page) -> (u16, Json) {
    let snap = state.snapshot();
    let Some(g) = snap.grouping(name) else {
        return (
            404,
            error_body("unknown_grouping", format!("no grouping named {name:?}")),
        );
    };
    match g.assignment.get(user as usize).copied().flatten() {
        Some(gi) => {
            let mut body = group_body(&snap, name, g, gi, page);
            if let Json::Obj(fields) = &mut body {
                fields.insert(0, ("user".to_string(), Json::from(user)));
            }
            (200, body)
        }
        None => (
            404,
            error_body("unknown_user", format!("user {user} is not assigned")),
        ),
    }
}

fn recommend(state: &ServeState, name: &str, group: usize, params: RecommendParams) -> (u16, Json) {
    let snap = state.snapshot();
    let Some(g) = snap.grouping(name) else {
        return (
            404,
            error_body("unknown_grouping", format!("no grouping named {name:?}")),
        );
    };
    if group >= g.formation.grouping.len() {
        return (
            404,
            error_body("unknown_group", format!("no group {group}")),
        );
    }
    let grp = &g.formation.grouping.groups[group];
    // `exclude_rated` keeps only candidate items — items **no** member
    // has rated — from the stored list, preserving score order. The
    // candidate set comes from the per-grouping cache, so steady-state
    // queries pay one sorted-membership probe per recommended item.
    let mut items: Vec<(u32, f64)> = if params.exclude_rated {
        let candidates = state
            .candidate_items(&snap, name, group)
            .expect("grouping and group index checked above");
        grp.top_k
            .iter()
            .copied()
            .filter(|(item, _)| candidates.binary_search(item).is_ok())
            .collect()
    } else {
        grp.top_k.clone()
    };
    if let Some(top_k) = params.top_k {
        // The stored list is precomputed at the grouping's configured
        // `k`, so a larger request clamps to what exists.
        items.truncate(top_k);
    }
    let total = items.len();
    let lo = params.page.offset.min(total);
    let hi = lo.saturating_add(params.page.limit).min(total);
    (
        200,
        obj([
            ("grouping", Json::from(name)),
            ("group", Json::from(group)),
            ("items_total", Json::from(total)),
            ("items_offset", Json::from(lo)),
            ("top_k", top_k_json(&items[lo..hi])),
            ("excluded_rated", Json::from(params.exclude_rated)),
            ("satisfaction", Json::from(grp.satisfaction)),
            ("version", Json::from(snap.version)),
            ("grouping_version", Json::from(g.version)),
        ]),
    )
}

/// Default disagreement penalty when `"cons"` is requested without an
/// explicit `lambda`.
pub const DEFAULT_CONSENSUS_LAMBDA: f64 = 0.5;

/// Parses a semantics name as used by `/form`/`/grouping` bodies and the
/// CLI. `"cons"` starts from [`DEFAULT_CONSENSUS_LAMBDA`]; callers may
/// override the penalty afterwards (the `"lambda"` body key, `lambda=` in
/// `--grouping` specs).
pub fn parse_semantics(text: &str) -> Option<Semantics> {
    match text.to_ascii_lowercase().as_str() {
        "lm" | "least-misery" | "leastmisery" => Some(Semantics::LeastMisery),
        "av" | "aggregate-voting" | "aggregatevoting" => Some(Semantics::AggregateVoting),
        "cons" | "consensus" => Some(Semantics::Consensus {
            lambda: DEFAULT_CONSENSUS_LAMBDA,
        }),
        "ldr" | "leader" | "leader-weighted" | "leaderweighted" => Some(Semantics::LeaderWeighted),
        _ => None,
    }
}

/// Parses an aggregation name as used by `/form` bodies and the CLI.
pub fn parse_aggregation(text: &str) -> Option<Aggregation> {
    match text.to_ascii_lowercase().as_str() {
        "min" => Some(Aggregation::Min),
        "max" => Some(Aggregation::Max),
        "sum" => Some(Aggregation::Sum),
        _ => None,
    }
}

/// Applies `/form`/`/grouping` body overrides on top of a base
/// configuration; unknown names and non-positive sizes are errors.
fn apply_overrides(mut cfg: FormationConfig, parsed: &Json) -> Result<FormationConfig, String> {
    if let Some(v) = parsed.get("semantics") {
        cfg.semantics = v
            .as_str()
            .and_then(parse_semantics)
            .ok_or("semantics must be \"lm\", \"av\", \"cons\" or \"ldr\"")?;
    }
    if let Some(v) = parsed.get("lambda") {
        let lambda = v
            .as_f64()
            .filter(|l| l.is_finite() && *l >= 0.0)
            .ok_or("lambda must be a finite non-negative number")?;
        match cfg.semantics {
            Semantics::Consensus { .. } => cfg.semantics = Semantics::Consensus { lambda },
            _ => return Err("lambda only applies to \"cons\" semantics".to_string()),
        }
    }
    if let Some(v) = parsed.get("aggregation") {
        cfg.aggregation = v
            .as_str()
            .and_then(parse_aggregation)
            .ok_or("aggregation must be \"min\", \"max\" or \"sum\"")?;
    }
    if let Some(v) = parsed.get("k") {
        cfg.k = v.as_u64().filter(|&k| k >= 1).ok_or("k must be >= 1")? as usize;
    }
    if let Some(v) = parsed.get("ell") {
        cfg.ell = v.as_u64().filter(|&l| l >= 1).ok_or("ell must be >= 1")? as usize;
    }
    Ok(cfg)
}

/// The `name=` parameter of `POST /form`; absent means `default`.
fn parse_form_name(query: &str) -> String {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == "name")
        .map(|(_, v)| v.to_string())
        .unwrap_or_else(|| Snapshot::DEFAULT_GROUPING.to_string())
}

/// The shared `/form` + `/grouping` success body.
fn formed_body(outcome: &crate::batch::BatchOutcome, name: &str) -> Json {
    let g = outcome
        .snapshot
        .grouping(name)
        .expect("formed grouping present in installed snapshot");
    obj([
        ("grouping", Json::from(name)),
        ("version", Json::from(outcome.snapshot.version)),
        ("grouping_version", Json::from(g.version)),
        ("groups", Json::from(g.formation.grouping.len())),
        ("objective", Json::from(g.formation.objective)),
        ("algorithm", Json::from(g.config.grd_name())),
        ("batch_size", Json::from(outcome.batch_size)),
        ("coalesced", Json::from(!outcome.leader)),
    ])
}

/// `POST /form?name=`: re-forms one *existing* grouping with optional
/// overrides on top of its current configuration. Unknown names are 404 —
/// creation is `POST /grouping`'s job, so a typo cannot silently mint a
/// new registry entry.
fn form(state: &ServeState, query: &str, body: &str) -> (u16, Json) {
    let name = parse_form_name(query);
    let snap = state.snapshot();
    let Some(g) = snap.grouping(&name) else {
        return (
            404,
            error_body(
                "unknown_grouping",
                format!("no grouping named {name:?}; create it with POST /v1/grouping"),
            ),
        );
    };
    let cfg = if body.trim().is_empty() {
        g.config
    } else {
        let parsed = match Json::parse(body) {
            Ok(v) => v,
            Err(e) => return (400, error_body("bad_request", e)),
        };
        match apply_overrides(g.config, &parsed) {
            Ok(cfg) => cfg,
            Err(message) => return (400, error_body("bad_request", message)),
        }
    };
    drop(snap);
    match state.form_named(&name, cfg) {
        Ok(outcome) => (200, formed_body(&outcome, &name)),
        Err(err) => gf_error_response(&err),
    }
}

/// `POST /grouping`: registers a new named grouping (or reconfigures an
/// existing one) over the shared matrix. The base configuration is the
/// grouping's own when it exists, the `default` grouping's otherwise.
fn create_grouping(state: &ServeState, body: &str) -> (u16, Json) {
    let parsed = match Json::parse(body) {
        Ok(v) => v,
        Err(e) => return (400, error_body("bad_request", e)),
    };
    let Some(name) = parsed
        .get("name")
        .and_then(Json::as_str)
        .map(str::to_string)
    else {
        return (
            400,
            error_body("bad_request", "body must carry a \"name\" for the grouping"),
        );
    };
    let snap = state.snapshot();
    let base = snap
        .grouping(&name)
        .unwrap_or_else(|| snap.default_grouping())
        .config;
    let cfg = match apply_overrides(base, &parsed) {
        Ok(cfg) => cfg,
        Err(message) => return (400, error_body("bad_request", message)),
    };
    drop(snap);
    match state.form_named(&name, cfg) {
        Ok(outcome) => (200, formed_body(&outcome, &name)),
        Err(err) => gf_error_response(&err),
    }
}

fn rate(state: &ServeState, body: &str) -> (u16, Json) {
    let parsed = match Json::parse(body) {
        Ok(v) => v,
        Err(e) => return (400, error_body("bad_request", e)),
    };
    let (Some(user), Some(item), Some(rating)) = (
        parsed.get("user").and_then(Json::as_u64),
        parsed.get("item").and_then(Json::as_u64),
        parsed.get("rating").and_then(Json::as_f64),
    ) else {
        return (
            400,
            error_body(
                "bad_request",
                "body must be {\"user\":u,\"item\":i,\"rating\":r}",
            ),
        );
    };
    // Raw-id mode forwards the full u64 ids through the remap layer;
    // dense mode requires them to be in-range matrix indices.
    let accepted = if state.raw_ids().is_some() {
        state.rate_raw(user, item, rating)
    } else if user > u32::MAX as u64 || item > u32::MAX as u64 {
        return (400, error_body("bad_request", "user/item out of u32 range"));
    } else {
        state.rate(user as u32, item as u32, rating)
    };
    match accepted {
        Ok(pending) => (
            202,
            obj([
                ("accepted", Json::from(true)),
                ("pending", Json::from(pending)),
                ("version", Json::from(state.snapshot().version)),
            ]),
        ),
        Err(err) => gf_error_response(&err),
    }
}

/// `POST /v1/feedback`: journals one observed consumption — "`user`
/// actually consumed `item`" — optionally scoped to one grouping via
/// `"grouping"`. Durably WAL-journaled before the 202 like a rating;
/// background passes fold it into the online quality window that powers
/// the `quality` block of `/v1/stats`. Feedback never admits new ids.
fn feedback(state: &ServeState, body: &str) -> (u16, Json) {
    let parsed = match Json::parse(body) {
        Ok(v) => v,
        Err(e) => return (400, error_body("bad_request", e)),
    };
    let (Some(user), Some(item)) = (
        parsed.get("user").and_then(Json::as_u64),
        parsed.get("item").and_then(Json::as_u64),
    ) else {
        return (
            400,
            error_body(
                "bad_request",
                "body must be {\"user\":u,\"item\":i} with an optional \"grouping\"",
            ),
        );
    };
    let scope = match parsed.get("grouping") {
        None | Some(Json::Null) => None,
        Some(v) => match v.as_str() {
            Some(name) => Some(name.to_string()),
            None => {
                return (
                    400,
                    error_body("bad_request", "\"grouping\" must be a string"),
                )
            }
        },
    };
    // An unknown scope is the same class of miss as an unknown grouping
    // in a path: 404, not 400 — the name may exist after a `/grouping`.
    if let Some(name) = scope.as_deref() {
        if state.snapshot().grouping(name).is_none() {
            return (
                404,
                error_body("unknown_grouping", format!("no grouping named {name:?}")),
            );
        }
    }
    let accepted = if state.raw_ids().is_some() {
        state.feedback_raw(user, item, scope.as_deref())
    } else if user > u32::MAX as u64 || item > u32::MAX as u64 {
        return (400, error_body("bad_request", "user/item out of u32 range"));
    } else {
        state.feedback(user as u32, item as u32, scope.as_deref())
    };
    match accepted {
        Ok(pending) => (
            202,
            obj([
                ("accepted", Json::from(true)),
                ("pending", Json::from(pending)),
                ("version", Json::from(state.snapshot().version)),
            ]),
        ),
        Err(err) => gf_error_response(&err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ServeConfig;
    use gf_core::{RatingMatrix, RatingScale};
    use std::sync::Arc;
    use std::time::Duration;

    fn test_state() -> Arc<ServeState> {
        let rows: Vec<Vec<f64>> = (0..9)
            .map(|u| {
                (0..5)
                    .map(|i| 1.0 + ((u * 3 + i * 2 + u * i) % 5) as f64)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let matrix = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
        let cfg = ServeConfig::new(FormationConfig::new(
            Semantics::LeastMisery,
            Aggregation::Min,
            2,
            3,
        ))
        .with_batch_window(Duration::ZERO);
        ServeState::new(matrix, cfg).unwrap()
    }

    fn get(state: &ServeState, path: &str) -> (u16, Json) {
        route(
            state,
            &HttpRequest {
                method: "GET".into(),
                path: path.into(),
                query: String::new(),
                body: String::new(),
                keep_alive: true,
            },
        )
    }

    fn post(state: &ServeState, path: &str, body: &str) -> (u16, Json) {
        route(
            state,
            &HttpRequest {
                method: "POST".into(),
                path: path.into(),
                query: String::new(),
                body: body.into(),
                keep_alive: true,
            },
        )
    }

    #[test]
    fn health_reports_shape() {
        let s = test_state();
        let (status, body) = get(&s, "/health");
        assert_eq!(status, 200);
        assert_eq!(body.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(body.get("users").and_then(Json::as_u64), Some(9));
        assert_eq!(body.get("version").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn group_lookup_round_trips_assignment() {
        let s = test_state();
        for u in 0..9u32 {
            let (status, body) = get(&s, &format!("/group/{u}"));
            assert_eq!(status, 200, "user {u}");
            let gi = body.get("group").and_then(Json::as_u64).unwrap() as usize;
            let members = body.get("members").and_then(Json::as_arr).unwrap();
            assert!(members.iter().any(|m| m.as_u64() == Some(u as u64)));
            let (rs, rbody) = get(&s, &format!("/recommend/{gi}"));
            assert_eq!(rs, 200);
            assert_eq!(rbody.get("top_k"), body.get("top_k"));
        }
    }

    fn get_query(state: &ServeState, path: &str, query: &str) -> (u16, Json) {
        route(
            state,
            &HttpRequest {
                method: "GET".into(),
                path: path.into(),
                query: query.into(),
                body: String::new(),
                keep_alive: true,
            },
        )
    }

    #[test]
    fn group_members_are_paged() {
        // ell = 1 merges all 9 users into one group.
        let rows: Vec<Vec<f64>> = (0..9).map(|u| vec![1.0 + (u % 5) as f64; 3]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let matrix = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
        let cfg = ServeConfig::new(FormationConfig::new(
            Semantics::LeastMisery,
            Aggregation::Min,
            2,
            1,
        ));
        let s = ServeState::new(matrix, cfg).unwrap();
        let (status, body) = get_query(&s, "/group/0", "limit=3&offset=4");
        assert_eq!(status, 200);
        assert_eq!(body.get("members_total").and_then(Json::as_u64), Some(9));
        assert_eq!(body.get("members_offset").and_then(Json::as_u64), Some(4));
        let members: Vec<u64> = body
            .get("members")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter_map(Json::as_u64)
            .collect();
        assert_eq!(members, vec![4, 5, 6]);
        // Out-of-range offsets clamp to an empty page, never an error.
        let (status, body) = get_query(&s, "/group/0", "offset=99");
        assert_eq!(status, 200);
        assert!(body
            .get("members")
            .and_then(Json::as_arr)
            .unwrap()
            .is_empty());
        // Same window semantics on the recommendation endpoint.
        let (status, body) = get_query(&s, "/recommend/0", "limit=1");
        assert_eq!(status, 200);
        assert_eq!(
            body.get("top_k").and_then(Json::as_arr).map(<[_]>::len),
            Some(1)
        );
        assert_eq!(body.get("items_total").and_then(Json::as_u64), Some(2));
        // Malformed paging parameters are a 400, unknown ones are ignored.
        assert_eq!(get_query(&s, "/group/0", "limit=abc").0, 400);
        assert_eq!(get_query(&s, "/group/0", "offset=-1").0, 400);
        assert_eq!(get_query(&s, "/group/0", "foo=1").0, 200);
    }

    #[test]
    fn default_member_cap_truncates_large_groups() {
        assert_eq!(parse_page("").unwrap().limit, DEFAULT_MEMBER_LIMIT);
        assert_eq!(
            parse_page("limit=10&offset=3").unwrap(),
            Page {
                offset: 3,
                limit: 10
            }
        );
        assert!(parse_page("limit=").is_err());
    }

    #[test]
    fn stats_reports_refresh_paths() {
        let s = test_state();
        assert_eq!(
            post(&s, "/rate", r#"{"user":1,"item":2,"rating":5}"#).0,
            202
        );
        s.flush().unwrap();
        let (status, body) = get(&s, "/stats");
        assert_eq!(status, 200);
        assert_eq!(
            body.get("refresh_incremental").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(body.get("refresh_cold").and_then(Json::as_u64), Some(0));
        assert_eq!(
            body.get("refresh_mode").and_then(Json::as_str),
            Some("auto")
        );
    }

    #[test]
    fn unknown_user_group_and_path_are_404() {
        let s = test_state();
        assert_eq!(get(&s, "/group/99").0, 404);
        assert_eq!(get(&s, "/recommend/99").0, 404);
        assert_eq!(get(&s, "/nope").0, 404);
        assert_eq!(get(&s, "/group/abc").0, 400);
    }

    #[test]
    fn wrong_method_is_405() {
        let s = test_state();
        let (status, _) = route(
            &s,
            &HttpRequest {
                method: "DELETE".into(),
                path: "/health".into(),
                query: String::new(),
                body: String::new(),
                keep_alive: true,
            },
        );
        assert_eq!(status, 405);
    }

    #[test]
    fn rate_endpoint_accepts_and_rejects() {
        let s = test_state();
        let (status, body) = post(&s, "/rate", r#"{"user":1,"item":2,"rating":5}"#);
        assert_eq!(status, 202);
        assert_eq!(body.get("pending").and_then(Json::as_u64), Some(1));
        assert_eq!(
            post(&s, "/rate", r#"{"user":99,"item":0,"rating":5}"#).0,
            404
        );
        assert_eq!(
            post(&s, "/rate", r#"{"user":0,"item":0,"rating":99}"#).0,
            400
        );
        assert_eq!(post(&s, "/rate", "not json").0, 400);
        assert_eq!(post(&s, "/rate", r#"{"user":0}"#).0, 400);
    }

    #[test]
    fn form_endpoint_overrides_config() {
        let s = test_state();
        let (status, body) = post(
            &s,
            "/form",
            r#"{"semantics":"av","aggregation":"sum","ell":2}"#,
        );
        assert_eq!(status, 200);
        assert_eq!(
            body.get("algorithm").and_then(Json::as_str),
            Some("GRD-AV-SUM")
        );
        assert!(body.get("groups").and_then(Json::as_u64).unwrap() <= 2);
        assert_eq!(post(&s, "/form", r#"{"semantics":"bogus"}"#).0, 400);
        assert_eq!(post(&s, "/form", r#"{"k":0}"#).0, 400);
        // Empty body re-forms under the current config.
        assert_eq!(post(&s, "/form", "").0, 200);
    }

    #[test]
    fn v1_paths_alias_legacy_paths_with_deprecation() {
        let s = test_state();
        for (method, v1_path) in [("GET", "/v1/health"), ("GET", "/v1/stats")] {
            let req = |path: &str| HttpRequest {
                method: method.into(),
                path: path.into(),
                query: String::new(),
                body: String::new(),
                keep_alive: true,
            };
            let v1 = route_full(&s, &req(v1_path));
            let legacy = route_full(&s, &req(&v1_path["/v1".len()..]));
            assert_eq!(v1.status, 200);
            assert!(!v1.deprecated, "{v1_path} is the canonical surface");
            assert!(legacy.deprecated, "unversioned alias must be flagged");
            assert_eq!(v1.status, legacy.status);
        }
        // "/v1" without a following slash is not the namespace.
        let (status, body) = get(&s, "/v1health");
        assert_eq!(status, 404);
        assert_eq!(
            body.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("unknown_endpoint")
        );
    }

    #[test]
    fn errors_share_one_envelope() {
        let s = test_state();
        let code = |(status, body): (u16, Json)| {
            let err = body.get("error").cloned().expect("error envelope");
            assert!(err.get("message").and_then(Json::as_str).is_some());
            (
                status,
                err.get("code").and_then(Json::as_str).unwrap().to_string(),
            )
        };
        assert_eq!(code(get(&s, "/v1/group/99")), (404, "unknown_user".into()));
        assert_eq!(
            code(get(&s, "/v1/recommend/99")),
            (404, "unknown_group".into())
        );
        assert_eq!(
            code(get(&s, "/v1/recommend/nope/0")),
            (404, "unknown_grouping".into())
        );
        assert_eq!(code(get(&s, "/v1/nope")), (404, "unknown_endpoint".into()));
        assert_eq!(code(get(&s, "/v1/group/abc")), (400, "bad_request".into()));
        assert_eq!(
            code(post(&s, "/v1/rate", "not json")),
            (400, "bad_request".into())
        );
        assert_eq!(
            code(post(&s, "/v1/rate", r#"{"user":99,"item":0,"rating":5}"#)),
            (404, "unknown_user".into())
        );
        let (status, _) = route(
            &s,
            &HttpRequest {
                method: "DELETE".into(),
                path: "/v1/health".into(),
                query: String::new(),
                body: String::new(),
                keep_alive: true,
            },
        );
        assert_eq!(status, 405);
    }

    #[test]
    fn feedback_endpoint_journals_and_surfaces_quality() {
        let s = test_state();
        let (status, body) = post(&s, "/v1/feedback", r#"{"user":1,"item":2}"#);
        assert_eq!(status, 202);
        assert_eq!(body.get("accepted").and_then(Json::as_bool), Some(true));
        assert_eq!(post(&s, "/v1/feedback", r#"{"user":99,"item":0}"#).0, 404);
        assert_eq!(
            post(
                &s,
                "/v1/feedback",
                r#"{"user":0,"item":0,"grouping":"nope"}"#
            )
            .0,
            404
        );
        assert_eq!(post(&s, "/v1/feedback", r#"{"user":0}"#).0, 400);
        s.flush().unwrap();
        let (status, stats) = get(&s, "/v1/stats");
        assert_eq!(status, 200);
        assert_eq!(
            stats.get("feedback_applied").and_then(Json::as_u64),
            Some(1)
        );
        let q = stats
            .get("quality")
            .and_then(|q| q.get("default"))
            .expect("per-grouping quality block");
        assert_eq!(q.get("window_events").and_then(Json::as_u64), Some(1));
        assert!(q.get("ndcg").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn v1_recommend_filters_rated_items_by_default() {
        let s = test_state();
        // The 9x5 fixture matrix is dense: every item is rated by every
        // member, so the filtered list is empty under /v1 defaults...
        let (status, body) = get(&s, "/v1/recommend/0");
        assert_eq!(status, 200);
        assert_eq!(body.get("items_total").and_then(Json::as_u64), Some(0));
        assert_eq!(
            body.get("excluded_rated").and_then(Json::as_bool),
            Some(true)
        );
        // ...while the legacy alias (and an explicit opt-out) still see
        // the stored list.
        let (_, legacy) = get(&s, "/recommend/0");
        assert_eq!(
            legacy.get("excluded_rated").and_then(Json::as_bool),
            Some(false)
        );
        assert!(legacy.get("items_total").and_then(Json::as_u64).unwrap() > 0);
        let (_, opt_out) = get_query(&s, "/v1/recommend/0", "exclude_rated=false");
        assert_eq!(opt_out.get("top_k"), legacy.get("top_k"));
        // top_k clamps to the stored list length.
        let (_, clamped) = get_query(&s, "/v1/recommend/0", "exclude_rated=false&top_k=1");
        assert_eq!(clamped.get("items_total").and_then(Json::as_u64), Some(1));
        let (_, large) = get_query(&s, "/v1/recommend/0", "exclude_rated=false&top_k=999");
        assert_eq!(large.get("top_k"), legacy.get("top_k"));
        assert_eq!(
            get_query(&s, "/v1/recommend/0", "exclude_rated=maybe").0,
            400
        );
        assert_eq!(get_query(&s, "/v1/recommend/0", "top_k=x").0, 400);
    }

    #[test]
    fn route_table_rows_all_dispatch() {
        let s = test_state();
        for (method, pattern) in ROUTE_TABLE {
            let path = pattern
                .replace("{name}", "default")
                .replace("{user}", "0")
                .replace("{group}", "0")
                .replace("{item}", "0");
            let (status, _) = route(
                &s,
                &HttpRequest {
                    method: (*method).into(),
                    path,
                    query: String::new(),
                    body: String::new(),
                    keep_alive: true,
                },
            );
            // Anything but unknown_endpoint/method_not_allowed proves the
            // row reaches a real handler (POSTs 400 on the empty body).
            assert!(
                status != 405 && (status != 404 || *method == "GET"),
                "{method} {pattern} -> {status}"
            );
        }
    }

    #[test]
    fn name_parsers() {
        assert_eq!(parse_semantics("LM"), Some(Semantics::LeastMisery));
        assert_eq!(
            parse_semantics("aggregate-voting"),
            Some(Semantics::AggregateVoting)
        );
        assert_eq!(parse_semantics("x"), None);
        assert_eq!(parse_aggregation("Sum"), Some(Aggregation::Sum));
        assert_eq!(parse_aggregation("median"), None);
    }
}
