//! Request coalescing for `/form`.
//!
//! Formation is the expensive operation the serving layer exists to
//! amortize: when many clients ask for a (re-)formation at once, running
//! one `ShardedFormer` pass per request would melt the box for identical
//! answers. The (crate-private) `Batcher` coalesces concurrent requests with the *same*
//! [`FormationConfig`] arriving within a small window into one run: the
//! first request becomes the **leader**, sleeps out the window so
//! followers can join, executes once, and every member of the batch
//! returns the same installed snapshot. Requests with different
//! configurations never coalesce (they would produce different answers).
//!
//! A leader removes its slot *before* running, so requests arriving while
//! a long formation is executing open the next batch instead of latching
//! onto a stale one.

use crate::state::Snapshot;
use gf_core::{
    Aggregation, FormationConfig, FxHashMap, GfError, MissingPolicy, Result, Semantics,
    WeightScheme,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What a batched `/form` call produced.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// The snapshot installed by the batch's single formation run.
    pub snapshot: Arc<Snapshot>,
    /// How many requests this batch answered (1 = no coalescing).
    pub batch_size: u64,
    /// Whether this request executed the run (vs joining one).
    pub leader: bool,
}

/// Hashable identity of a formation request: the target grouping plus the
/// full formation configuration; two requests coalesce iff their keys are
/// equal. Requests for different groupings never coalesce even under the
/// same configuration — they install different registry entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BatchKey {
    grouping: String,
    /// Semantics discriminant; [`Semantics::Consensus`]'s `lambda` is
    /// keyed separately by bit pattern.
    semantics: u8,
    lambda: u64,
    agg: u8,
    k: usize,
    ell: usize,
    policy: u8,
    n_threads: usize,
}

impl BatchKey {
    fn of(grouping: &str, cfg: &FormationConfig) -> BatchKey {
        let (semantics, lambda) = match cfg.semantics {
            Semantics::LeastMisery => (0, 0.0),
            Semantics::AggregateVoting => (1, 0.0),
            Semantics::Consensus { lambda } => (2, lambda),
            Semantics::LeaderWeighted => (3, 0.0),
        };
        BatchKey {
            grouping: grouping.to_string(),
            semantics,
            lambda: lambda.to_bits(),
            // Full discriminant, not a tag prefix: "MIN"/"MAX" share a
            // first byte, and the weight scheme changes the answer too.
            agg: match cfg.aggregation {
                Aggregation::Min => 0,
                Aggregation::Max => 1,
                Aggregation::Sum => 2,
                Aggregation::WeightedSum(WeightScheme::Uniform) => 3,
                Aggregation::WeightedSum(WeightScheme::InversePosition) => 4,
                Aggregation::WeightedSum(WeightScheme::InverseLog2) => 5,
            },
            k: cfg.k,
            ell: cfg.ell,
            policy: match cfg.policy {
                MissingPolicy::Min => 0,
                MissingPolicy::UserMean => 1,
                MissingPolicy::Skip => 2,
            },
            n_threads: cfg.n_threads,
        }
    }
}

/// One in-flight batch; followers block on `done` until the leader
/// publishes into `result`.
struct Slot {
    result: Mutex<Option<Result<Arc<Snapshot>>>>,
    done: Condvar,
    members: AtomicU64,
}

/// Publishes an error to a slot if dropped during unwinding — armed while
/// the leader executes its run and disarmed (`mem::forget`) on normal
/// return, so a panicking formation never strands followers on the
/// condvar.
struct PublishOnUnwind<'a> {
    slot: &'a Slot,
}

impl Drop for PublishOnUnwind<'_> {
    fn drop(&mut self) {
        let mut published = match self.slot.result.lock() {
            Ok(p) => p,
            Err(poisoned) => poisoned.into_inner(),
        };
        *published = Some(Err(GfError::InvalidGrouping(
            "formation run panicked".to_string(),
        )));
        self.slot.done.notify_all();
    }
}

/// Coalesces same-configuration submissions within a time window.
pub(crate) struct Batcher {
    window: Duration,
    slots: Mutex<FxHashMap<BatchKey, Arc<Slot>>>,
}

impl Batcher {
    pub(crate) fn new(window: Duration) -> Batcher {
        Batcher {
            window,
            slots: Mutex::new(FxHashMap::default()),
        }
    }

    /// Submits a formation request. The first submitter for a key becomes
    /// the leader and executes `run` after waiting out the window; later
    /// same-key submitters block until the leader's result is published
    /// and share it.
    pub(crate) fn submit(
        &self,
        grouping: &str,
        cfg: FormationConfig,
        run: impl FnOnce() -> Result<Arc<Snapshot>>,
    ) -> Result<BatchOutcome> {
        let key = BatchKey::of(grouping, &cfg);
        let (slot, leader) = {
            let mut slots = self.slots.lock().expect("batch slots poisoned");
            match slots.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Slot {
                        result: Mutex::new(None),
                        done: Condvar::new(),
                        members: AtomicU64::new(0),
                    });
                    slots.insert(key.clone(), Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        slot.members.fetch_add(1, Ordering::Relaxed);

        if leader {
            if !self.window.is_zero() {
                std::thread::sleep(self.window);
            }
            // Close the batch before the (potentially long) run so new
            // arrivals start the next one.
            self.slots
                .lock()
                .expect("batch slots poisoned")
                .remove(&key);
            // If `run` panics the guard publishes an error instead, so
            // followers get a response rather than waiting forever.
            let guard = PublishOnUnwind { slot: &slot };
            let result = run();
            std::mem::forget(guard);
            let mut published = slot.result.lock().expect("batch result poisoned");
            *published = Some(result.clone());
            slot.done.notify_all();
            drop(published);
            result.map(|snapshot| BatchOutcome {
                snapshot,
                batch_size: slot.members.load(Ordering::Relaxed),
                leader: true,
            })
        } else {
            let mut published = slot.result.lock().expect("batch result poisoned");
            while published.is_none() {
                published = slot.done.wait(published).expect("batch result poisoned");
            }
            let result = published.as_ref().expect("published above").clone();
            drop(published);
            result.map(|snapshot| BatchOutcome {
                snapshot,
                batch_size: slot.members.load(Ordering::Relaxed),
                leader: false,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(agg: Aggregation) -> FormationConfig {
        FormationConfig::new(Semantics::LeastMisery, agg, 3, 5)
    }

    #[test]
    fn keys_distinguish_every_aggregation() {
        // Regression: Min and Max share a tag prefix ("MIN"/"MAX") and
        // must still never coalesce; weighted-sum schemes differ too.
        let aggs = [
            Aggregation::Min,
            Aggregation::Max,
            Aggregation::Sum,
            Aggregation::WeightedSum(WeightScheme::Uniform),
            Aggregation::WeightedSum(WeightScheme::InversePosition),
            Aggregation::WeightedSum(WeightScheme::InverseLog2),
        ];
        for (i, &a) in aggs.iter().enumerate() {
            for &b in &aggs[i + 1..] {
                assert_ne!(
                    BatchKey::of("default", &cfg(a)),
                    BatchKey::of("default", &cfg(b)),
                    "{a:?} {b:?}"
                );
            }
        }
        assert_eq!(
            BatchKey::of("default", &cfg(Aggregation::Min)),
            BatchKey::of("default", &cfg(Aggregation::Min))
        );
    }

    #[test]
    fn keys_distinguish_groupings_and_moment_semantics() {
        let c = cfg(Aggregation::Min);
        // Same configuration, different grouping: never coalesce.
        assert_ne!(BatchKey::of("a", &c), BatchKey::of("b", &c));
        // Consensus lambdas key by bit pattern.
        let cons =
            |lambda| FormationConfig::new(Semantics::Consensus { lambda }, Aggregation::Min, 3, 5);
        assert_ne!(BatchKey::of("a", &cons(0.5)), BatchKey::of("a", &cons(0.7)));
        assert_eq!(BatchKey::of("a", &cons(0.5)), BatchKey::of("a", &cons(0.5)));
        // The two moment semantics never collide with the paper pair.
        let ldr = FormationConfig::new(Semantics::LeaderWeighted, Aggregation::Min, 3, 5);
        let av = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Min, 3, 5);
        assert_ne!(BatchKey::of("a", &ldr), BatchKey::of("a", &av));
        assert_ne!(BatchKey::of("a", &ldr), BatchKey::of("a", &cons(0.0)));
    }

    #[test]
    fn followers_are_released_when_the_leader_panics() {
        // Window far larger than the follower's join delay so a slow CI
        // machine cannot promote the follower to leader of a new batch.
        let batcher = Arc::new(Batcher::new(Duration::from_millis(500)));
        let key_cfg = cfg(Aggregation::Min);
        let leader = {
            let batcher = Arc::clone(&batcher);
            std::thread::spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    batcher.submit("default", key_cfg, || panic!("formation blew up"))
                }));
                assert!(result.is_err(), "leader should propagate the panic");
            })
        };
        // Give the leader time to claim the slot, then join as follower.
        std::thread::sleep(Duration::from_millis(50));
        let follower = batcher.submit("default", key_cfg, || unreachable!("follower never runs"));
        match follower {
            Err(GfError::InvalidGrouping(message)) => {
                assert!(message.contains("panicked"), "{message}")
            }
            other => panic!("follower should see the panic error, got {other:?}"),
        }
        leader.join().unwrap();
    }
}
