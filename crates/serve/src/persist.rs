//! Durable serving: WAL-journaled boots, warm restarts and the
//! background checkpointer.
//!
//! ## Recovery, end to end
//!
//! [`boot`] is the single entry point for a `--data-dir` server:
//!
//! 1. load the newest *valid* checkpoint (corrupt ones are skipped with a
//!    reason, falling back to the previous file — see
//!    [`gf_persist::checkpoint::load_latest`]);
//! 2. rebuild [`ServeState`] from it — or run the cold-boot path (the
//!    caller's matrix closure + initial formation) when no checkpoint
//!    exists yet;
//! 3. open the WAL (torn tails are truncated here) and replay every
//!    record past the checkpoint's `wal_seq` through the ordinary
//!    refresh pipeline, then flush;
//! 4. write a fresh checkpoint of the recovered state, attach the WAL for
//!    live appends and prune segments the new checkpoint covers.
//!
//! Because replay feeds the same journal records through the same
//! [`ServeState::process_pending`] arithmetic the live server uses (one
//! version per record), a recovered process is *bit-for-bit* the server
//! that never crashed — the crash harness in `tests/crash.rs` kills a
//! real server mid-run and asserts digest equality against an
//! uninterrupted reference.
//!
//! The byte formats live in `gf-persist` (see `docs/PERSISTENCE.md`);
//! operational guidance (sync modes, crash windows, failure playbooks) in
//! `docs/OPERATIONS.md`.

use crate::state::{ServeConfig, ServeState};
use gf_core::{GfError, RatingMatrix, Result};
use gf_persist::checkpoint::{self, CheckpointGrouping, CheckpointState};
use gf_persist::wal::{SyncMode, Wal};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything that parameterises durability for one serving process.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Directory holding WAL segments and checkpoint files.
    pub data_dir: PathBuf,
    /// When accepted ratings reach disk (`--wal-sync`).
    pub sync: SyncMode,
    /// Cadence of background checkpoints; `Duration::ZERO` disables the
    /// checkpointer (the boot checkpoint is still written).
    pub checkpoint_interval: Duration,
    /// Keep WAL segments that a checkpoint already covers instead of
    /// pruning them (`--wal-retain`; the crash harness scans them to
    /// rebuild its reference run).
    pub retain_wal: bool,
}

impl DurabilityOptions {
    /// Durable defaults: fsync every append, checkpoint every 30 s,
    /// prune covered WAL segments.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        DurabilityOptions {
            data_dir: data_dir.into(),
            sync: SyncMode::Always,
            checkpoint_interval: Duration::from_secs(30),
            retain_wal: false,
        }
    }
}

/// What a [`boot`] recovered, for the startup report and `/stats`.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// No usable checkpoint existed; the matrix closure ran.
    pub cold_start: bool,
    /// Snapshot version of the checkpoint restored (0 on cold start).
    pub checkpoint_version: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Torn-tail bytes dropped while opening the WAL.
    pub dropped_bytes: u64,
    /// Checkpoint files skipped as unreadable, with reasons.
    pub skipped_checkpoints: Vec<(PathBuf, String)>,
}

/// Boots a durable server from `opts.data_dir`: warm from the newest
/// valid checkpoint plus WAL tail when possible, cold through
/// `make_matrix` otherwise. On return the state is fully recovered, a
/// checkpoint of the recovered state is on disk, and the WAL is attached
/// — every subsequent [`ServeState::rate`] journals before acknowledging.
///
/// `make_matrix` runs **only** on cold start; a warm boot never pays for
/// dataset loading or the initial formation, which is what makes warm
/// restarts measurably faster than cold boots (see `EXPERIMENTS.md`).
pub fn boot(
    cfg: ServeConfig,
    opts: &DurabilityOptions,
    make_matrix: impl FnOnce() -> Result<RatingMatrix>,
) -> Result<(Arc<ServeState>, RecoveryReport)> {
    std::fs::create_dir_all(&opts.data_dir)
        .map_err(|e| GfError::Persist(format!("mkdir {}: {e}", opts.data_dir.display())))?;
    let outcome = checkpoint::load_latest(&opts.data_dir).map_err(GfError::from)?;
    let skipped_checkpoints = outcome.skipped;
    let boot_groupings = cfg.groupings.clone();
    let (state, cold_start, ckpt_version, ckpt_wal_seq) = match outcome.loaded {
        Some((ck, _)) => {
            let (version, wal_seq) = (ck.snapshot_version, ck.wal_seq);
            (ServeState::restore_from(ck, cfg)?, false, version, wal_seq)
        }
        None => {
            let mut cfg = cfg;
            let matrix = make_matrix()?;
            // The cold path clamps ell (for every boot grouping) like a
            // volatile boot would; the warm path inherits the
            // checkpointed (already valid) configs.
            let n = matrix.n_users() as usize;
            cfg.formation.ell = cfg.formation.ell.min(n).max(1);
            for (_, gc) in &mut cfg.groupings {
                gc.ell = gc.ell.min(n).max(1);
            }
            (ServeState::new(matrix, cfg)?, true, 0, 0)
        }
    };
    // A warm boot restores the checkpoint's registry verbatim; any boot
    // flags naming groupings the checkpoint does not know yet register
    // now (idempotent — a grouping the durable state already carries is
    // never re-formed, so repeated restarts stay bit-for-bit stable).
    if !cold_start {
        for (name, fc) in &boot_groupings {
            if state.snapshot().grouping(name).is_none() {
                state.form_named(name, *fc)?;
            }
        }
    }
    let (wal, scanned) = Wal::open(&opts.data_dir, opts.sync).map_err(GfError::from)?;
    // A checkpoint ahead of the log means WAL segments were lost (they
    // are never pruned past the newest checkpoint in normal operation).
    // Everything the checkpoint covers is safe; restart the log past its
    // frontier so future sequences stay unique.
    let wal = if wal.next_seq() <= ckpt_wal_seq {
        drop(wal);
        Wal::create_at(&opts.data_dir, opts.sync, ckpt_wal_seq + 1).map_err(GfError::from)?
    } else {
        wal
    };
    let mut replayed = 0u64;
    for rec in &scanned.records {
        if rec.seq > ckpt_wal_seq {
            state.enqueue_replayed(rec)?;
            replayed += 1;
        }
    }
    state.flush()?;
    state.attach_wal(wal);
    state
        .stats
        .recovery_replayed
        .store(replayed, Ordering::Relaxed);
    state
        .stats
        .recovery_dropped_bytes
        .store(scanned.dropped_bytes, Ordering::Relaxed);
    state
        .stats
        .checkpoint_version
        .store(ckpt_version, Ordering::Relaxed);
    // Checkpoint the recovered state now: the next restart is warm even
    // if the periodic checkpointer never fires, and the replayed tail
    // (plus any torn bytes) is truncated away.
    checkpoint_now(&state, opts)?;
    Ok((
        state,
        RecoveryReport {
            cold_start,
            checkpoint_version: ckpt_version,
            replayed,
            dropped_bytes: scanned.dropped_bytes,
            skipped_checkpoints,
        },
    ))
}

/// Writes a checkpoint of the current state to `opts.data_dir` unless the
/// newest on-disk checkpoint already covers this snapshot version.
/// Returns the checkpointed version, or `None` when skipped.
///
/// Serving never pauses: the snapshot is frozen from its immutable `Arc`
/// bundle under a briefly-held lock, and the deep copy + encode + fsync
/// all happen outside every serving lock.
pub fn checkpoint_now(state: &ServeState, opts: &DurabilityOptions) -> Result<Option<u64>> {
    let exported = state.export_for_checkpoint();
    if exported.version <= state.stats.checkpoint_version.load(Ordering::Relaxed) {
        return Ok(None);
    }
    let ck = CheckpointState {
        snapshot_version: exported.version,
        wal_seq: exported.progress.wal_seq,
        applied: exported.progress.applied,
        users_admitted: exported.progress.users_admitted,
        items_admitted: exported.progress.items_admitted,
        matrix: (*exported.matrix).clone(),
        prefs: (*exported.prefs).clone(),
        groupings: exported
            .groupings
            .into_iter()
            .map(|g| CheckpointGrouping {
                name: g.name,
                version: g.version,
                config: g.config,
                formation: g.formation,
                former: g.former,
            })
            .collect(),
        feedback: (*exported.feedback).clone(),
    };
    checkpoint::write(&opts.data_dir, &ck).map_err(GfError::from)?;
    state
        .stats
        .checkpoint_version
        .store(ck.snapshot_version, Ordering::Relaxed);
    state
        .stats
        .checkpoints_written
        .fetch_add(1, Ordering::Relaxed);
    if !opts.retain_wal {
        if let Some(res) = state.with_wal(|w| w.prune_through(ck.wal_seq)) {
            res.map_err(GfError::from)?;
        }
    }
    Ok(Some(ck.snapshot_version))
}

/// Handle to the background checkpointer thread; [`Checkpointer::stop`]
/// (or drop) asks it to exit and joins it.
pub struct Checkpointer {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Checkpointer {
    /// Signals the thread and waits for it to finish.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns the periodic checkpointer: every `opts.checkpoint_interval` it
/// freezes the current snapshot and writes it via [`checkpoint_now`]
/// (skipping when nothing changed). Failures are reported to stderr and
/// retried next tick — a full disk must not take serving down.
pub fn spawn_checkpointer(state: Arc<ServeState>, opts: DurabilityOptions) -> Checkpointer {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let interval = opts.checkpoint_interval.max(Duration::from_millis(1));
        loop {
            // Sleep in short slices so stop requests are honored promptly.
            let mut slept = Duration::ZERO;
            while slept < interval {
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                let step = (interval - slept).min(Duration::from_millis(100));
                std::thread::sleep(step);
                slept += step;
            }
            if flag.load(Ordering::Relaxed) {
                return;
            }
            if let Err(e) = checkpoint_now(&state, &opts) {
                eprintln!("gf-serve: checkpoint failed (will retry): {e}");
            }
        }
    });
    Checkpointer {
        stop,
        handle: Some(handle),
    }
}
