//! Raw-id serving (`--raw-ids`): a growable raw → dense id layer in
//! front of `/rate`.
//!
//! Datasets arrive with arbitrary original ids (MovieLens user 71567,
//! Netflix movie 2_000_000) that the loaders densify through
//! [`gf_datasets::IdRemapper`]. Without this layer a serving client must
//! know the loader's dense indices; with it, `POST /rate` accepts the
//! *original* ids: already-seen raw ids resolve to their dense row, and a
//! never-seen raw id is interned at the next free dense index — exactly
//! the index the admission pipeline will grow the matrix to — subject to
//! the same [`GrowthPolicy`] caps that gate dense-id admission.
//!
//! The table lives in memory and is re-seeded at boot (from the dataset
//! file's first-appearance order, or as the identity for synthetic
//! corpora). Raw ids interned *at serve time* are therefore forgotten by
//! a restart — persisting the table next to the checkpoint is a known
//! follow-up (see ROADMAP) — but the dense rows they occupied stay, so
//! re-interning after a restart reuses fresh indices rather than
//! corrupting existing rows.

use gf_core::{GfError, GrowthPolicy, Result};
use gf_datasets::IdRemapper;
use std::sync::Mutex;

/// Thread-safe raw → dense id tables for both axes.
#[derive(Debug, Default)]
pub struct RawIdLayer {
    users: Mutex<IdRemapper>,
    items: Mutex<IdRemapper>,
}

impl RawIdLayer {
    /// A layer over pre-seeded remappers (dataset boots: the loader's
    /// `user_ids`/`item_ids` in dense order).
    pub fn new(users: IdRemapper, items: IdRemapper) -> RawIdLayer {
        RawIdLayer {
            users: Mutex::new(users),
            items: Mutex::new(items),
        }
    }

    /// The identity seeding for corpora whose ids are already dense
    /// (synthetic boots, or a warm restart that has no id table to
    /// restore): raw id `x` maps to dense index `x` for every existing
    /// row, and genuinely new raw ids intern past the end as usual.
    pub fn identity(n_users: u32, n_items: u32) -> RawIdLayer {
        RawIdLayer::new(
            IdRemapper::from_ids((0..u64::from(n_users)).collect()),
            IdRemapper::from_ids((0..u64::from(n_items)).collect()),
        )
    }

    /// `(raw users known, raw items known)` — for `/stats`.
    pub fn len(&self) -> (usize, usize) {
        (
            self.users.lock().expect("raw user table poisoned").len(),
            self.items.lock().expect("raw item table poisoned").len(),
        )
    }

    /// Resolves one `(raw_user, raw_item)` pair to dense indices under
    /// `growth`: known raw ids always resolve; never-seen ones intern at
    /// the next free dense index when the policy grows and its cap still
    /// has room, and fail like an out-of-range dense id otherwise.
    pub fn resolve(
        &self,
        raw_user: u64,
        raw_item: u64,
        growth: GrowthPolicy,
    ) -> Result<(u32, u32)> {
        // `Fixed` resolves but never interns: capping at the current
        // table size makes `intern_capped` a pure lookup.
        let (user_cap, item_cap) = match growth {
            GrowthPolicy::Fixed => (None, None),
            GrowthPolicy::Grow {
                max_users,
                max_items,
            } => (Some(max_users), Some(max_items)),
        };
        let user = {
            let mut users = self.users.lock().expect("raw user table poisoned");
            let n = users.len() as u32;
            users
                .intern_capped(raw_user, user_cap.unwrap_or(n))
                .ok_or(axis_error("user", raw_user, n, growth))?
        };
        let item = {
            let mut items = self.items.lock().expect("raw item table poisoned");
            let n = items.len() as u32;
            items
                .intern_capped(raw_item, item_cap.unwrap_or(n))
                .ok_or(axis_error("item", raw_item, n, growth))?
        };
        Ok((user, item))
    }
}

/// The error a raw id that cannot resolve maps to: unknown under a fixed
/// population reads as out-of-range (404 at the HTTP layer, like a bad
/// dense id); a cap refusing an admission reads as growth exhaustion
/// (409). Raw ids can exceed `u32` — they are clamped for the error
/// payload only, never for the mapping itself.
fn axis_error(axis: &'static str, raw: u64, known: u32, growth: GrowthPolicy) -> GfError {
    let id = raw.min(u64::from(u32::MAX)) as u32;
    match (axis, growth) {
        (
            _,
            GrowthPolicy::Grow {
                max_users,
                max_items,
            },
        ) => GfError::GrowthExhausted {
            axis,
            id,
            max: if axis == "user" { max_users } else { max_items },
        },
        ("user", GrowthPolicy::Fixed) => GfError::UserOutOfRange {
            user: id,
            n_users: known,
        },
        (_, GrowthPolicy::Fixed) => GfError::ItemOutOfRange {
            item: id,
            n_items: known,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_resolves_existing_ids_in_place() {
        let layer = RawIdLayer::identity(4, 3);
        assert_eq!(layer.resolve(2, 1, GrowthPolicy::Fixed).unwrap(), (2, 1));
        assert_eq!(layer.len(), (4, 3));
    }

    #[test]
    fn fixed_population_rejects_unknown_raw_ids() {
        let layer = RawIdLayer::identity(4, 3);
        assert!(matches!(
            layer.resolve(9, 0, GrowthPolicy::Fixed),
            Err(GfError::UserOutOfRange { .. })
        ));
        assert!(matches!(
            layer.resolve(0, 9, GrowthPolicy::Fixed),
            Err(GfError::ItemOutOfRange { .. })
        ));
        // Nothing was interned by the failures.
        assert_eq!(layer.len(), (4, 3));
    }

    #[test]
    fn growth_interns_at_the_next_dense_index_until_the_cap() {
        let layer = RawIdLayer::new(
            IdRemapper::from_ids(vec![100, 200]),
            IdRemapper::from_ids(vec![7]),
        );
        let grow = GrowthPolicy::Grow {
            max_users: 3,
            max_items: 2,
        };
        // Known raw ids resolve to their seeded dense rows.
        assert_eq!(layer.resolve(200, 7, grow).unwrap(), (1, 0));
        // A new raw user takes dense index 2 — the row admission grows to.
        assert_eq!(layer.resolve(555, 7, grow).unwrap(), (2, 0));
        // Re-rating the same raw id is stable.
        assert_eq!(layer.resolve(555, 7, grow).unwrap(), (2, 0));
        // The user cap is now exhausted; the item cap still has room.
        assert!(matches!(
            layer.resolve(556, 7, grow),
            Err(GfError::GrowthExhausted { axis: "user", .. })
        ));
        assert_eq!(layer.resolve(555, 9000, grow).unwrap(), (2, 1));
        assert!(matches!(
            layer.resolve(555, 9001, grow),
            Err(GfError::GrowthExhausted { axis: "item", .. })
        ));
    }
}
