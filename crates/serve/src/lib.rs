//! # gf-serve — a batched, incrementally-updating group-formation server
//!
//! The paper's end goal is *serving*: groups are formed so that
//! precomputed group recommendations can be handed to users as they
//! arrive (Roy, Lakshmanan, Liu — SIGMOD 2015, §1/§6). This crate is that
//! online component, sitting on the parallel formation backend
//! ([`gf_core::ShardedFormer`]):
//!
//! * **A versioned API surface** — every endpoint lives under `/v1/...`
//!   with one shared error envelope (`{"error":{"code","message"}}`) and
//!   uniform `top_k`/`limit`/`offset` parameters; the original
//!   unversioned paths remain as thin aliases that answer identically
//!   but carry a `Deprecation: true` header ([`http`] module docs hold
//!   the route table, mirrored by [`http::ROUTE_TABLE`]).
//! * **Snapshot serving** — queries (`GET /v1/group/{user}`,
//!   `GET /v1/recommend/{group}`, `GET /v1/health`) read an immutable,
//!   `Arc`-shared [`Snapshot`] and are lock-free after one brief
//!   read-lock to clone the `Arc`.
//! * **A closed quality loop** — `GET /v1/recommend/...` filters the
//!   stored top-`k` list down to *candidate* items no group member has
//!   rated (`exclude_rated=true` is the `/v1` default, computed by
//!   [`gf_core::CandidateEngine`] and cached per grouping version);
//!   `POST /v1/feedback` journals which recommendations users accepted
//!   — WAL-durable before the `202`, exactly like ratings — and folds
//!   them into a sliding [`gf_core::OnlineEval`] window whose per-group
//!   precision/recall/NDCG\@k surface under `quality` in `/v1/stats`.
//! * **A named-grouping registry** — one process serves many independent
//!   formations (per-tenant `k`/`ℓ`/semantics) over **one** shared rating
//!   matrix: the snapshot maps grouping names to [`state::GroupingState`]
//!   entries that share the matrix/prefs `Arc`s, `POST /grouping`
//!   registers new ones at runtime, and `GET /group/{name}/{user}`
//!   queries each by name ([`state`] module docs).
//! * **Request batching** — concurrent `POST /form` requests for the
//!   same grouping and configuration arriving within a small window
//!   coalesce into a single formation run ([`batch`]).
//! * **Incremental updates** — `POST /rate` enqueues a rating; a bounded
//!   background pass patches the matrix ([`gf_core::RatingMatrix::upsert`])
//!   and only the affected users' preference lists
//!   ([`gf_core::PrefIndex::patch_user`]), re-forms, and atomically swaps
//!   the snapshot. The incremental path converges to exactly what a cold
//!   rebuild over the same ratings produces — property-tested in
//!   `tests/serve_props.rs`.
//! * **Population growth** — under
//!   [`gf_core::GrowthPolicy::Grow`] a `POST /rate` naming a never-seen
//!   user or item *admits* it (up to the caps): the journal entry carries
//!   the grown id, the background pass extends matrix, preference index
//!   and standing formation, and `GET /group/{new_user}` resolves after
//!   the refresh — no restart. `/stats` reports
//!   `users_admitted`/`items_admitted`.
//! * **Durability** — with `--data-dir`, every accepted `POST /rate` is
//!   journaled to an fsync'd write-ahead log *before* acknowledgment, a
//!   background thread checkpoints the immutable snapshot without pausing
//!   serving, and a restart warm-loads the newest checkpoint and replays
//!   the WAL tail — bit-for-bit equal to the server that never crashed
//!   ([`persist`], formats in `gf-persist`, runbook in
//!   `docs/OPERATIONS.md`).
//! * **No new dependencies** — the HTTP/1.1 codec ([`http`]) and the JSON
//!   codec ([`json`]) are hand-rolled on `std::net`, the same offline
//!   philosophy as the `vendor/` stubs.
//!
//! ## In-process quickstart
//!
//! ```
//! use gf_core::{Aggregation, FormationConfig, RatingMatrix, RatingScale, Semantics};
//! use gf_serve::{ServeConfig, ServeState};
//!
//! let matrix = RatingMatrix::from_dense(
//!     &[
//!         &[1.0, 4.0, 3.0][..],
//!         &[2.0, 3.0, 5.0],
//!         &[2.0, 5.0, 1.0],
//!         &[3.0, 1.0, 1.0],
//!     ],
//!     RatingScale::one_to_five(),
//! )
//! .unwrap();
//! let cfg = ServeConfig::new(FormationConfig::new(
//!     Semantics::LeastMisery,
//!     Aggregation::Min,
//!     2,
//!     2,
//! ));
//! let state = ServeState::new(matrix, cfg).unwrap();
//!
//! // A rating arrives; queries keep seeing the old snapshot until the
//! // background pass (here: a synchronous flush) installs the next one.
//! state.rate(0, 2, 5.0).unwrap();
//! assert_eq!(state.snapshot().version, 1);
//! state.flush().unwrap();
//! let snap = state.snapshot();
//! assert_eq!(snap.version, 2);
//! assert_eq!(snap.matrix.get(0, 2), Some(5.0));
//! # assert!(snap.default_grouping().assignment.iter().all(Option::is_some));
//! ```
//!
//! To serve over TCP, wrap the state in a [`net::Server`] (or run the
//! `gf-serve` binary, which loads a dataset and does exactly that). The
//! transport defaults to an epoll readiness loop on Linux and falls
//! back to hardened thread-per-connection elsewhere; `--net` selects
//! explicitly ([`net`] module docs).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod http;
pub mod json;
pub mod loadgen;
pub mod net;
pub mod persist;
pub mod remap;
pub mod state;

pub use batch::BatchOutcome;
pub use http::{parse_aggregation, parse_semantics, HttpRequest, RouteOutcome, ROUTE_TABLE};
pub use json::Json;
pub use net::{NetMode, NetOptions, Server, ServerHandle};
pub use persist::{boot, spawn_checkpointer, Checkpointer, DurabilityOptions, RecoveryReport};
pub use remap::RawIdLayer;
pub use state::{
    validate_grouping_name, GroupingState, Progress, ServeConfig, ServeState, Snapshot,
};
