//! The `gf-serve` binary: load a rating dataset, form groups, serve.
//!
//! ```text
//! gf-serve [--addr HOST] [--port P] \
//!          [--data FILE [--format dat|csv|tsv|netflix] [--scale one5|zero5|half]] \
//!          [--synth USERSxITEMS] \
//!          [--semantics lm|av] [--aggregation min|max|sum] [--k K] [--ell L] \
//!          [--threads N] [--batch-window-ms MS] [--refresh auto|cold|incremental] \
//!          [--grow] [--max-users N] [--max-items N] [--max-swaps N]
//! ```
//!
//! With `--data`, the file format defaults from the extension (`.dat` →
//! MovieLens dat, `.csv` → MovieLens csv, anything else → TSV) and the
//! rating scale defaults to `half` (0.5–5.0 half stars, which contains
//! the 1–5 integer grid). Without `--data`, a Yahoo!-Music-shaped
//! synthetic corpus of `--synth` size (default `1000x200`) is generated.
//!
//! `--grow` lets `/rate` admit never-seen users and items without a
//! restart ([`gf_core::GrowthPolicy::Grow`]); `--max-users`/`--max-items`
//! cap the growth (and each implies `--grow`; default: unbounded).
//! `--max-swaps` caps the incremental repair budget per refresh
//! (bounded worst-case refresh latency; the server converges once
//! updates quiesce).
//!
//! On startup the server prints one line —
//! `gf-serve: listening on http://ADDR (users=N items=M groups=G)` — that
//! scripts (and the CI smoke job) wait for before issuing requests.

use gf_core::{
    Aggregation, FormationConfig, GrowthPolicy, RatingMatrix, RatingScale, RefreshMode, Semantics,
};
use gf_datasets::io::{read_movielens_csv, read_movielens_dat, read_netflix, read_tsv};
use gf_datasets::SynthConfig;
use gf_serve::{parse_aggregation, parse_semantics, ServeConfig, ServeState, Server};
use std::io::BufReader;
use std::process::exit;
use std::time::Duration;

struct Options {
    addr: String,
    port: u16,
    data: Option<String>,
    format: Option<String>,
    scale: RatingScale,
    synth: (u32, u32),
    semantics: Semantics,
    aggregation: Aggregation,
    k: usize,
    ell: usize,
    threads: usize,
    batch_window: Duration,
    refresh: RefreshMode,
    grow: bool,
    max_users: Option<u32>,
    max_items: Option<u32>,
    max_swaps: Option<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1".into(),
            port: 7878,
            data: None,
            format: None,
            scale: RatingScale::half_star(),
            synth: (1000, 200),
            semantics: Semantics::LeastMisery,
            aggregation: Aggregation::Min,
            k: 5,
            ell: 10,
            threads: 0,
            batch_window: Duration::from_millis(5),
            refresh: RefreshMode::Auto,
            grow: false,
            max_users: None,
            max_items: None,
            max_swaps: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: gf-serve [--addr HOST] [--port P] [--data FILE] [--format dat|csv|tsv|netflix] \
         [--scale one5|zero5|half] [--synth UxI] [--semantics lm|av] \
         [--aggregation min|max|sum] [--k K] [--ell L] [--threads N] [--batch-window-ms MS] \
         [--refresh auto|cold|incremental] [--grow] [--max-users N] [--max-items N] \
         [--max-swaps N]"
    );
    exit(2)
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("gf-serve: {message}");
    exit(1)
}

fn parse_options() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            usage();
        }
        if flag == "--grow" {
            opts.grow = true;
            continue;
        }
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--addr" => opts.addr = value,
            "--port" => opts.port = value.parse().unwrap_or_else(|_| usage()),
            "--data" => opts.data = Some(value),
            "--format" => opts.format = Some(value),
            "--scale" => {
                opts.scale = match value.as_str() {
                    "one5" => RatingScale::one_to_five(),
                    "zero5" => RatingScale::zero_to_five(),
                    "half" => RatingScale::half_star(),
                    _ => usage(),
                }
            }
            "--synth" => {
                let (u, i) = value.split_once('x').unwrap_or_else(|| usage());
                opts.synth = (
                    u.parse().unwrap_or_else(|_| usage()),
                    i.parse().unwrap_or_else(|_| usage()),
                );
            }
            "--semantics" => {
                opts.semantics = parse_semantics(&value).unwrap_or_else(|| usage());
            }
            "--aggregation" => {
                opts.aggregation = parse_aggregation(&value).unwrap_or_else(|| usage());
            }
            "--k" => opts.k = value.parse().unwrap_or_else(|_| usage()),
            "--ell" => opts.ell = value.parse().unwrap_or_else(|_| usage()),
            "--threads" => opts.threads = value.parse().unwrap_or_else(|_| usage()),
            "--batch-window-ms" => {
                opts.batch_window = Duration::from_millis(value.parse().unwrap_or_else(|_| usage()))
            }
            "--refresh" => {
                opts.refresh = match value.as_str() {
                    "auto" => RefreshMode::Auto,
                    "cold" => RefreshMode::Cold,
                    "incremental" => RefreshMode::Incremental,
                    _ => usage(),
                }
            }
            "--max-users" => opts.max_users = Some(value.parse().unwrap_or_else(|_| usage())),
            "--max-items" => opts.max_items = Some(value.parse().unwrap_or_else(|_| usage())),
            "--max-swaps" => opts.max_swaps = Some(value.parse().unwrap_or_else(|_| usage())),
            _ => usage(),
        }
    }
    opts
}

fn load_matrix(opts: &Options) -> RatingMatrix {
    let Some(path) = &opts.data else {
        let (users, items) = opts.synth;
        eprintln!("gf-serve: no --data given; generating a {users}x{items} synthetic corpus");
        return SynthConfig::yahoo_music()
            .with_users(users)
            .with_items(items)
            .generate()
            .matrix;
    };
    let format = opts.format.clone().unwrap_or_else(|| {
        match std::path::Path::new(path)
            .extension()
            .and_then(|e| e.to_str())
        {
            Some("dat") => "dat".into(),
            Some("csv") => "csv".into(),
            _ => "tsv".into(),
        }
    });
    let file = std::fs::File::open(path).unwrap_or_else(|e| fail(format!("open {path}: {e}")));
    let reader = BufReader::new(file);
    let loaded = match format.as_str() {
        "dat" => read_movielens_dat(reader, opts.scale),
        "csv" => read_movielens_csv(reader, opts.scale),
        "netflix" => read_netflix(reader, opts.scale),
        "tsv" => read_tsv(reader, opts.scale),
        other => fail(format!("unknown format {other:?}")),
    };
    loaded
        .unwrap_or_else(|e| fail(format!("load {path}: {e}")))
        .matrix
}

fn main() {
    let opts = parse_options();
    let matrix = load_matrix(&opts);
    let ell = opts.ell.min(matrix.n_users() as usize).max(1);
    let growth = if opts.grow || opts.max_users.is_some() || opts.max_items.is_some() {
        GrowthPolicy::Grow {
            max_users: opts.max_users.unwrap_or(u32::MAX),
            max_items: opts.max_items.unwrap_or(u32::MAX),
        }
    } else {
        GrowthPolicy::Fixed
    };
    let formation = FormationConfig::new(opts.semantics, opts.aggregation, opts.k, ell)
        .with_threads(opts.threads)
        .with_refresh(opts.refresh)
        .with_growth(growth);
    let mut cfg = ServeConfig::new(formation).with_batch_window(opts.batch_window);
    if let Some(max_swaps) = opts.max_swaps {
        cfg = cfg.with_max_swaps(max_swaps);
    }
    let (n_users, n_items) = (matrix.n_users(), matrix.n_items());
    let state =
        ServeState::new(matrix, cfg).unwrap_or_else(|e| fail(format!("initial formation: {e}")));
    let groups = state.snapshot().formation.grouping.len();
    let server = Server::bind((opts.addr.as_str(), opts.port), state)
        .unwrap_or_else(|e| fail(format!("bind {}:{}: {e}", opts.addr, opts.port)));
    let addr = server
        .local_addr()
        .unwrap_or_else(|e| fail(format!("local addr: {e}")));
    println!(
        "gf-serve: listening on http://{addr} (users={n_users} items={n_items} groups={groups})"
    );
    if let Err(e) = server.run() {
        fail(format!("serve loop: {e}"));
    }
}
