//! The `gf-serve` binary: load a rating dataset, form groups, serve.
//!
//! ```text
//! gf-serve [--addr HOST] [--port P] \
//!          [--net epoll|blocking] [--conn-timeout-ms MS] [--max-conn-threads N] \
//!          [--net-workers N] \
//!          [--data FILE [--format dat|csv|tsv|netflix] [--scale one5|zero5|half]] \
//!          [--synth USERSxITEMS] [--raw-ids] \
//!          [--semantics lm|av|cons|ldr] [--aggregation min|max|sum] [--k K] [--ell L] \
//!          [--grouping NAME:k=K,ell=L,agg=A,semantics=S,lambda=F]... \
//!          [--threads N] [--batch-window-ms MS] [--refresh auto|cold|incremental] \
//!          [--grow] [--max-users N] [--max-items N] [--max-swaps N] \
//!          [--feedback-window N] \
//!          [--data-dir DIR] [--wal-sync always|interval] [--wal-sync-interval-ms MS] \
//!          [--checkpoint-interval-ms MS] [--wal-retain]
//! ```
//!
//! `--net` picks the transport: `epoll` (the default on Linux) drives a
//! fixed pool of `--net-workers` readiness-loop threads over
//! `epoll_wait`; `blocking` is the portable thread-per-connection
//! fallback, capped at `--max-conn-threads` concurrent handler threads.
//! Either transport closes a connection idle (or stalled mid-request /
//! mid-response) for `--conn-timeout-ms` (default 30000; 0 disables) —
//! the slowloris guard. See `docs/ARCHITECTURE.md` for the readiness
//! loop and `docs/OPERATIONS.md` for tuning.
//!
//! With `--data`, the file format defaults from the extension (`.dat` →
//! MovieLens dat, `.csv` → MovieLens csv, anything else → TSV) and the
//! rating scale defaults to `half` (0.5–5.0 half stars, which contains
//! the 1–5 integer grid). Without `--data`, a Yahoo!-Music-shaped
//! synthetic corpus of `--synth` size (default `1000x200`) is generated.
//!
//! `--grouping` (repeatable) registers additional **named groupings**
//! next to the `default` one — each key=value overrides the default
//! formation flags for that grouping only (`agg`/`aggregation`,
//! `semantics`/`sem`, `k`, `ell`, `lambda` for `cons`). All groupings
//! share one rating matrix; more can be registered at runtime via
//! `POST /grouping`.
//!
//! `--raw-ids` makes `/rate` accept the dataset's *original* ids: the
//! loader's id tables seed a serve-time remapper, and never-seen raw ids
//! intern under the growth caps. The table is in-memory: every boot
//! re-seeds it from the `--data` file's first-appearance order (identity
//! for synthetic corpora), so raw ids interned *at serve time* are
//! forgotten by a restart — persisting the table is a ROADMAP follow-up.
//!
//! `--grow` lets `/rate` admit never-seen users and items without a
//! restart ([`gf_core::GrowthPolicy::Grow`]); `--max-users`/`--max-items`
//! cap the growth (and each implies `--grow`; default: unbounded).
//! `--max-swaps` caps the incremental repair budget per refresh
//! (bounded worst-case refresh latency; the server converges once
//! updates quiesce).
//!
//! `--feedback-window N` sizes the sliding window of `POST /v1/feedback`
//! events behind the per-grouping quality metrics in `/v1/stats`
//! (default 1024 events). The window is a process knob, not durable
//! state: a restart re-fills whatever capacity the new process was
//! given from the journaled event history.
//!
//! `--data-dir` makes the server **durable**: every accepted `/rate` is
//! journaled to an fsync'd WAL before acknowledgment, checkpoints are
//! written in the background, and a restart warm-loads the newest
//! checkpoint and replays the WAL tail (see `docs/OPERATIONS.md`). On a
//! warm boot the checkpointed formation configuration wins over the
//! `--semantics`/`--k`/… flags — it is durable state a `/form` may have
//! changed; non-formation knobs (threads are part of the config, but
//! batch window, pass bounds and repair budget are not) still come from
//! the command line.
//!
//! On startup the server prints a `gf-serve: recovery: …` line when
//! durable (cold start, or checkpoint version + records replayed), then
//! one line —
//! `gf-serve: listening on http://ADDR (users=N items=M groups=G)` — that
//! scripts (and the CI smoke job) wait for before issuing requests.

use gf_core::{
    Aggregation, FormationConfig, GrowthPolicy, RatingMatrix, RatingScale, RefreshMode, Semantics,
};
use gf_datasets::io::{read_movielens_csv, read_movielens_dat, read_netflix, read_tsv};
use gf_datasets::SynthConfig;
use gf_persist::wal::SyncMode;
use gf_serve::{
    parse_aggregation, parse_semantics, DurabilityOptions, NetMode, NetOptions, ServeConfig,
    ServeState, Server,
};
use std::io::BufReader;
use std::process::exit;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Options {
    addr: String,
    port: u16,
    net: NetOptions,
    data: Option<String>,
    format: Option<String>,
    scale: RatingScale,
    synth: (u32, u32),
    semantics: Semantics,
    aggregation: Aggregation,
    k: usize,
    ell: usize,
    /// Raw `--grouping NAME:k=..` specs, resolved against the default
    /// formation config once flag parsing is complete.
    groupings: Vec<String>,
    raw_ids: bool,
    threads: usize,
    batch_window: Duration,
    refresh: RefreshMode,
    grow: bool,
    max_users: Option<u32>,
    max_items: Option<u32>,
    max_swaps: Option<usize>,
    feedback_window: usize,
    data_dir: Option<String>,
    wal_sync: String,
    wal_sync_interval: Duration,
    checkpoint_interval: Duration,
    wal_retain: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1".into(),
            port: 7878,
            net: NetOptions::default(),
            data: None,
            format: None,
            scale: RatingScale::half_star(),
            synth: (1000, 200),
            semantics: Semantics::LeastMisery,
            aggregation: Aggregation::Min,
            k: 5,
            ell: 10,
            groupings: Vec::new(),
            raw_ids: false,
            threads: 0,
            batch_window: Duration::from_millis(5),
            refresh: RefreshMode::Auto,
            grow: false,
            max_users: None,
            max_items: None,
            max_swaps: None,
            feedback_window: 1024,
            data_dir: None,
            wal_sync: "always".into(),
            wal_sync_interval: Duration::from_millis(50),
            checkpoint_interval: Duration::from_secs(30),
            wal_retain: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: gf-serve [--addr HOST] [--port P] [--net epoll|blocking] [--conn-timeout-ms MS] \
         [--max-conn-threads N] [--net-workers N] [--data FILE] [--format dat|csv|tsv|netflix] \
         [--scale one5|zero5|half] [--synth UxI] [--raw-ids] [--semantics lm|av|cons|ldr] \
         [--aggregation min|max|sum] [--k K] [--ell L] \
         [--grouping NAME:k=K,ell=L,agg=A,semantics=S,lambda=F]... \
         [--threads N] [--batch-window-ms MS] \
         [--refresh auto|cold|incremental] [--grow] [--max-users N] [--max-items N] \
         [--max-swaps N] [--feedback-window N] [--data-dir DIR] [--wal-sync always|interval] \
         [--wal-sync-interval-ms MS] [--checkpoint-interval-ms MS] [--wal-retain]"
    );
    exit(2)
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("gf-serve: {message}");
    exit(1)
}

fn parse_options() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            usage();
        }
        if flag == "--grow" {
            opts.grow = true;
            continue;
        }
        if flag == "--wal-retain" {
            opts.wal_retain = true;
            continue;
        }
        if flag == "--raw-ids" {
            opts.raw_ids = true;
            continue;
        }
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--addr" => opts.addr = value,
            "--port" => opts.port = value.parse().unwrap_or_else(|_| usage()),
            "--net" => opts.net.mode = NetMode::parse(&value).unwrap_or_else(|| usage()),
            "--conn-timeout-ms" => {
                let ms: u64 = value.parse().unwrap_or_else(|_| usage());
                opts.net.conn_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--max-conn-threads" => {
                opts.net.max_conn_threads = value
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--net-workers" => opts.net.workers = value.parse().unwrap_or_else(|_| usage()),
            "--data" => opts.data = Some(value),
            "--format" => opts.format = Some(value),
            "--scale" => {
                opts.scale = match value.as_str() {
                    "one5" => RatingScale::one_to_five(),
                    "zero5" => RatingScale::zero_to_five(),
                    "half" => RatingScale::half_star(),
                    _ => usage(),
                }
            }
            "--synth" => {
                let (u, i) = value.split_once('x').unwrap_or_else(|| usage());
                opts.synth = (
                    u.parse().unwrap_or_else(|_| usage()),
                    i.parse().unwrap_or_else(|_| usage()),
                );
            }
            "--semantics" => {
                opts.semantics = parse_semantics(&value).unwrap_or_else(|| usage());
            }
            "--aggregation" => {
                opts.aggregation = parse_aggregation(&value).unwrap_or_else(|| usage());
            }
            "--k" => opts.k = value.parse().unwrap_or_else(|_| usage()),
            "--ell" => opts.ell = value.parse().unwrap_or_else(|_| usage()),
            "--grouping" => opts.groupings.push(value),
            "--threads" => opts.threads = value.parse().unwrap_or_else(|_| usage()),
            "--batch-window-ms" => {
                opts.batch_window = Duration::from_millis(value.parse().unwrap_or_else(|_| usage()))
            }
            "--refresh" => {
                opts.refresh = match value.as_str() {
                    "auto" => RefreshMode::Auto,
                    "cold" => RefreshMode::Cold,
                    "incremental" => RefreshMode::Incremental,
                    _ => usage(),
                }
            }
            "--max-users" => opts.max_users = Some(value.parse().unwrap_or_else(|_| usage())),
            "--max-items" => opts.max_items = Some(value.parse().unwrap_or_else(|_| usage())),
            "--max-swaps" => opts.max_swaps = Some(value.parse().unwrap_or_else(|_| usage())),
            "--feedback-window" => {
                opts.feedback_window = value
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--data-dir" => opts.data_dir = Some(value),
            "--wal-sync" => {
                if value != "always" && value != "interval" {
                    usage();
                }
                opts.wal_sync = value;
            }
            "--wal-sync-interval-ms" => {
                opts.wal_sync_interval =
                    Duration::from_millis(value.parse().unwrap_or_else(|_| usage()))
            }
            "--checkpoint-interval-ms" => {
                opts.checkpoint_interval =
                    Duration::from_millis(value.parse().unwrap_or_else(|_| usage()))
            }
            _ => usage(),
        }
    }
    opts
}

/// Parses one `--grouping NAME:k=..,ell=..,agg=..,semantics=..,lambda=..`
/// spec on top of the default formation configuration. Semantics applies
/// before `lambda` so `semantics=cons,lambda=0.7` works in either order.
fn parse_grouping_spec(spec: &str, base: FormationConfig) -> (String, FormationConfig) {
    let (name, rest) = spec.split_once(':').unwrap_or((spec, ""));
    if name.is_empty() {
        fail(format!("--grouping {spec:?}: empty grouping name"));
    }
    let mut cfg = base;
    let pairs: Vec<(&str, &str)> = rest
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|kv| {
            kv.split_once('=')
                .unwrap_or_else(|| fail(format!("--grouping {spec:?}: {kv:?} is not key=value")))
        })
        .collect();
    for &(key, value) in pairs
        .iter()
        .filter(|(k, _)| *k == "semantics" || *k == "sem")
    {
        cfg.semantics = parse_semantics(value)
            .unwrap_or_else(|| fail(format!("--grouping {spec:?}: unknown semantics {value:?}")));
        let _ = key;
    }
    for &(key, value) in &pairs {
        match key {
            "semantics" | "sem" => {}
            "agg" | "aggregation" => {
                cfg.aggregation = parse_aggregation(value).unwrap_or_else(|| {
                    fail(format!(
                        "--grouping {spec:?}: unknown aggregation {value:?}"
                    ))
                })
            }
            "k" => {
                cfg.k = value
                    .parse()
                    .ok()
                    .filter(|&k| k >= 1)
                    .unwrap_or_else(|| fail(format!("--grouping {spec:?}: k must be >= 1")))
            }
            "ell" => {
                cfg.ell = value
                    .parse()
                    .ok()
                    .filter(|&l| l >= 1)
                    .unwrap_or_else(|| fail(format!("--grouping {spec:?}: ell must be >= 1")))
            }
            "lambda" => {
                let lambda: f64 = value
                    .parse()
                    .ok()
                    .filter(|l: &f64| l.is_finite() && *l >= 0.0)
                    .unwrap_or_else(|| {
                        fail(format!(
                            "--grouping {spec:?}: lambda must be >= 0 and finite"
                        ))
                    });
                match cfg.semantics {
                    Semantics::Consensus { .. } => cfg.semantics = Semantics::Consensus { lambda },
                    _ => fail(format!(
                        "--grouping {spec:?}: lambda only applies to semantics=cons"
                    )),
                }
            }
            other => fail(format!("--grouping {spec:?}: unknown key {other:?}")),
        }
    }
    (name.to_string(), cfg)
}

/// A loaded corpus: the matrix plus the raw ids of every dense index
/// (`None` for synthetic corpora, whose ids are already dense).
struct LoadedCorpus {
    matrix: RatingMatrix,
    raw_ids: Option<(Vec<u64>, Vec<u64>)>,
}

fn load_corpus(opts: &Options) -> LoadedCorpus {
    let Some(path) = &opts.data else {
        let (users, items) = opts.synth;
        eprintln!("gf-serve: no --data given; generating a {users}x{items} synthetic corpus");
        return LoadedCorpus {
            matrix: SynthConfig::yahoo_music()
                .with_users(users)
                .with_items(items)
                .generate()
                .matrix,
            raw_ids: None,
        };
    };
    let format = opts.format.clone().unwrap_or_else(|| {
        match std::path::Path::new(path)
            .extension()
            .and_then(|e| e.to_str())
        {
            Some("dat") => "dat".into(),
            Some("csv") => "csv".into(),
            _ => "tsv".into(),
        }
    });
    let file = std::fs::File::open(path).unwrap_or_else(|e| fail(format!("open {path}: {e}")));
    let reader = BufReader::new(file);
    let loaded = match format.as_str() {
        "dat" => read_movielens_dat(reader, opts.scale),
        "csv" => read_movielens_csv(reader, opts.scale),
        "netflix" => read_netflix(reader, opts.scale),
        "tsv" => read_tsv(reader, opts.scale),
        other => fail(format!("unknown format {other:?}")),
    };
    let loaded = loaded.unwrap_or_else(|e| fail(format!("load {path}: {e}")));
    LoadedCorpus {
        matrix: loaded.matrix,
        raw_ids: Some((loaded.user_ids, loaded.item_ids)),
    }
}

/// Builds the `--raw-ids` layer: dataset boots seed from the loader's id
/// tables (re-derived from the file on a warm restart — first-appearance
/// order is deterministic, so the dense indices line up with the
/// checkpointed matrix); synthetic corpora get the identity mapping.
fn raw_id_layer(
    corpus_ids: Option<(Vec<u64>, Vec<u64>)>,
    state: &ServeState,
) -> gf_serve::RawIdLayer {
    use gf_datasets::IdRemapper;
    let snap = state.snapshot();
    match corpus_ids {
        Some((users, items)) => {
            gf_serve::RawIdLayer::new(IdRemapper::from_ids(users), IdRemapper::from_ids(items))
        }
        None => gf_serve::RawIdLayer::identity(snap.matrix.n_users(), snap.matrix.n_items()),
    }
}

fn main() {
    let opts = parse_options();
    let growth = if opts.grow || opts.max_users.is_some() || opts.max_items.is_some() {
        GrowthPolicy::Grow {
            max_users: opts.max_users.unwrap_or(u32::MAX),
            max_items: opts.max_items.unwrap_or(u32::MAX),
        }
    } else {
        GrowthPolicy::Fixed
    };
    // `ell` is clamped against the loaded matrix just before the initial
    // formation runs: here for a volatile boot, inside `boot`'s cold path
    // for a durable one (a warm boot restores the checkpointed config
    // and never touches the flag defaults).
    let formation = FormationConfig::new(opts.semantics, opts.aggregation, opts.k, opts.ell)
        .with_threads(opts.threads)
        .with_refresh(opts.refresh)
        .with_growth(growth);
    let mut cfg = ServeConfig::new(formation)
        .with_batch_window(opts.batch_window)
        .with_feedback_window(opts.feedback_window);
    for spec in &opts.groupings {
        let (name, gc) = parse_grouping_spec(spec, formation);
        gf_serve::validate_grouping_name(&name)
            .unwrap_or_else(|e| fail(format!("--grouping {spec:?}: {e}")));
        cfg = cfg.with_grouping(name, gc);
    }
    if let Some(max_swaps) = opts.max_swaps {
        cfg = cfg.with_max_swaps(max_swaps);
    }

    // The boot closure runs only on cold durable starts; when it does,
    // stash the loader's raw-id tables for `--raw-ids`.
    let corpus_ids: std::cell::RefCell<Option<(Vec<u64>, Vec<u64>)>> =
        std::cell::RefCell::new(None);
    let (state, _checkpointer) = if let Some(dir) = &opts.data_dir {
        let sync = match opts.wal_sync.as_str() {
            "interval" => SyncMode::Interval(opts.wal_sync_interval),
            _ => SyncMode::Always,
        };
        let dopts = DurabilityOptions {
            data_dir: dir.into(),
            sync,
            checkpoint_interval: opts.checkpoint_interval,
            retain_wal: opts.wal_retain,
        };
        let started = Instant::now();
        let (state, report) = gf_serve::boot(cfg, &dopts, || {
            let corpus = load_corpus(&opts);
            *corpus_ids.borrow_mut() = corpus.raw_ids;
            Ok(corpus.matrix)
        })
        .unwrap_or_else(|e| fail(format!("recovery from {dir}: {e}")));
        for (path, reason) in &report.skipped_checkpoints {
            eprintln!(
                "gf-serve: recovery: skipped corrupt checkpoint {}: {reason}",
                path.display()
            );
        }
        let elapsed = started.elapsed().as_millis();
        if report.cold_start {
            println!("gf-serve: recovery: cold start (initial checkpoint written) in {elapsed}ms");
        } else {
            println!(
                "gf-serve: recovery: checkpoint version {} + {} wal records replayed \
                 ({} bytes dropped) in {elapsed}ms",
                report.checkpoint_version, report.replayed, report.dropped_bytes
            );
        }
        let checkpointer = (opts.checkpoint_interval > Duration::ZERO)
            .then(|| gf_serve::spawn_checkpointer(Arc::clone(&state), dopts));
        (state, checkpointer)
    } else {
        let corpus = load_corpus(&opts);
        let matrix = corpus.matrix;
        *corpus_ids.borrow_mut() = corpus.raw_ids;
        let n = matrix.n_users() as usize;
        cfg.formation.ell = cfg.formation.ell.min(n).max(1);
        for (_, gc) in &mut cfg.groupings {
            gc.ell = gc.ell.min(n).max(1);
        }
        let state = ServeState::new(matrix, cfg)
            .unwrap_or_else(|e| fail(format!("initial formation: {e}")));
        (state, None)
    };

    if opts.raw_ids {
        // A warm durable boot skipped the loader; re-derive the id tables
        // from the dataset file when one is named, identity otherwise.
        let ids = corpus_ids.borrow_mut().take().or_else(|| {
            opts.data.is_some().then(|| {
                let corpus = load_corpus(&opts);
                corpus.raw_ids.expect("--data loads always carry raw ids")
            })
        });
        state.attach_raw_ids(raw_id_layer(ids, &state));
    }

    let snap = state.snapshot();
    let (n_users, n_items) = (snap.matrix.n_users(), snap.matrix.n_items());
    let groups = snap.default_grouping().formation.grouping.len();
    let groupings = snap.groupings.len();
    drop(snap);
    let net_mode = opts.net.mode;
    let server = Server::bind_with((opts.addr.as_str(), opts.port), state, opts.net.clone())
        .unwrap_or_else(|e| fail(format!("bind {}:{}: {e}", opts.addr, opts.port)));
    let addr = server
        .local_addr()
        .unwrap_or_else(|e| fail(format!("local addr: {e}")));
    println!(
        "gf-serve: listening on http://{addr} \
         (users={n_users} items={n_items} groups={groups} groupings={groupings} net={})",
        net_mode.as_str()
    );
    if let Err(e) = server.run() {
        fail(format!("serve loop: {e}"));
    }
}
